package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"elsm/internal/record"
	"elsm/internal/vfs"
)

// smallCfg forces frequent flushes/compactions with little data.
func smallCfg(fs vfs.FS) Config {
	return Config{
		FS:            fs,
		MemtableSize:  4 << 10,
		BlockSize:     512,
		TableFileSize: 4 << 10,
		LevelBase:     16 << 10,
		MaxLevels:     5,
		KeepVersions:  0, // retain history: exercises version chains
	}
}

func mustOpenP2(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetVerified(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	want := map[string]string{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("key%05d", i%700)
		val := fmt.Sprintf("val%d", i)
		if _, err := s.Put([]byte(key), []byte(val)); err != nil {
			t.Fatal(err)
		}
		want[key] = val
	}
	if s.Engine().Stats().Compactions == 0 {
		t.Fatal("test did not exercise compaction")
	}
	for key, val := range want {
		res, err := s.Get([]byte(key))
		if err != nil {
			t.Fatalf("get %q: %v", key, err)
		}
		if !res.Found || string(res.Value) != val {
			t.Fatalf("get %q = %q found=%v, want %q", key, res.Value, res.Found, val)
		}
	}
	// Verified non-membership for absent keys (early-stop across levels).
	for _, k := range []string{"aaa", "key99999", "zzz", "key00000a"} {
		res, err := s.Get([]byte(k))
		if err != nil {
			t.Fatalf("absent get %q: %v", k, err)
		}
		if res.Found {
			t.Fatalf("found absent key %q", k)
		}
	}
}

func TestHistoricalGetVerified(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	var tss []uint64
	for i := 0; i < 10; i++ {
		ts, err := s.Put([]byte("k"), []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		tss = append(tss, ts)
		// Interleave other keys to force flushes.
		for j := 0; j < 200; j++ {
			s.Put([]byte(fmt.Sprintf("fill%d-%d", i, j)), bytes.Repeat([]byte("x"), 64))
		}
	}
	for i, ts := range tss {
		res, err := s.GetAt([]byte("k"), ts)
		if err != nil {
			t.Fatalf("historical get @%d: %v", ts, err)
		}
		if !res.Found || string(res.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("@%d = %q found=%v", ts, res.Value, res.Found)
		}
	}
	// Before the first version: verified absence.
	res, err := s.GetAt([]byte("k"), tss[0]-1)
	if err != nil {
		t.Fatalf("pre-history get: %v", err)
	}
	if res.Found {
		t.Fatal("found record before its first version")
	}
}

func TestDeleteVerified(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	s.Put([]byte("k"), []byte("v"))
	delTs, err := s.Delete([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Get([]byte("k"))
	if err != nil {
		t.Fatalf("get after delete: %v", err)
	}
	if res.Found {
		t.Fatal("deleted key still found")
	}
	// Historical read before the delete still verifies.
	res, err = s.GetAt([]byte("k"), delTs-1)
	if err != nil {
		t.Fatal(err)
	}
	_ = res // may or may not be found depending on tombstone GC policy at bottom level
}

func TestScanVerified(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	for i := 0; i < 1000; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	// Overwrite some keys so scans cross version chains.
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i*10)), []byte(fmt.Sprintf("new%d", i)))
	}
	out, err := s.Scan([]byte("key0100"), []byte("key0149"))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(out) != 50 {
		t.Fatalf("scan returned %d results", len(out))
	}
	for i, r := range out {
		wantKey := fmt.Sprintf("key%04d", 100+i)
		if string(r.Key) != wantKey {
			t.Fatalf("result %d key = %q want %q", i, r.Key, wantKey)
		}
		wantVal := fmt.Sprintf("v%d", 100+i)
		if (100+i)%10 == 0 {
			wantVal = fmt.Sprintf("new%d", (100+i)/10)
		}
		if string(r.Value) != wantVal {
			t.Fatalf("result %q = %q want %q", r.Key, r.Value, wantVal)
		}
	}
	// Empty range scans verify too.
	out, err = s.Scan([]byte("zzz0"), []byte("zzz9"))
	if err != nil {
		t.Fatalf("empty scan: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("empty scan returned %d", len(out))
	}
}

func TestBulkLoadVerified(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	var recs []record.Record
	for i := 0; i < 4000; i++ {
		recs = append(recs, record.Record{
			Key:   []byte(fmt.Sprintf("key%06d", i)),
			Ts:    uint64(i + 1),
			Kind:  record.KindSet,
			Value: []byte(fmt.Sprintf("val%d", i)),
		})
	}
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 1999, 3999} {
		res, err := s.Get(recs[i].Key)
		if err != nil || !res.Found || !bytes.Equal(res.Value, recs[i].Value) {
			t.Fatalf("bulk key %d: %+v err=%v", i, res, err)
		}
	}
	out, err := s.Scan([]byte("key000100"), []byte("key000199"))
	if err != nil || len(out) != 100 {
		t.Fatalf("bulk scan: %d results err=%v", len(out), err)
	}
}

// ---------------------------------------------------------------------------
// Attack scenarios: the malicious host tampers with out-of-enclave state.

func TestAttackCorruptSSTableDetected(t *testing.T) {
	fs := vfs.NewMem()
	s := mustOpenP2(t, smallCfg(fs))
	defer s.Close()
	for i := 0; i < 2000; i++ {
		s.Put([]byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("val%d", i)))
	}
	names, _ := fs.List("0")
	if len(names) == 0 {
		t.Fatal("no sstables on disk")
	}
	// Corrupt a byte inside every data file region by region.
	corrupted := 0
	for _, name := range names {
		f, _ := fs.Open(name)
		fs.Corrupt(name, f.Size()/3)
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("nothing corrupted")
	}
	// Every key must now either verify (if its record was untouched) or
	// fail with an authentication error — never return wrong data.
	authFailures := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key%05d", i)
		res, err := s.Get([]byte(key))
		switch {
		case err != nil:
			authFailures++
		case res.Found && string(res.Value) != fmt.Sprintf("val%d", i):
			t.Fatalf("silent corruption: %q = %q", key, res.Value)
		case !res.Found:
			// A verified non-membership for a present key would be a
			// completeness violation; but corrupt blocks fail before
			// that. Treat as failure for accounting.
			authFailures++
		}
	}
	if authFailures == 0 {
		t.Fatal("no corruption detected across 2000 reads")
	}
}

func TestAttackStaleResultDetected(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	ts1, _ := s.Put([]byte("target"), []byte("old"))
	s.Put([]byte("target"), []byte("new"))
	// Push both versions into one on-disk run so they share a chain.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	runs := s.Engine().Runs()
	if len(runs) != 1 {
		t.Fatalf("runs = %d", len(runs))
	}
	id := runs[0].ID
	// The honest host would return the new version; a malicious host
	// replays the old record (with its valid embedded proof).
	staleLk, err := s.Engine().LookupRun(id, []byte("target"), ts1)
	if err != nil || !staleLk.Found {
		t.Fatalf("stale lookup: %+v err=%v", staleLk, err)
	}
	d := s.snapshotDigests()[id]
	if _, err := verifyMembership([]byte("target"), record.MaxTs, staleLk.Rec, d); !errors.Is(err, ErrStale) {
		t.Fatalf("stale record accepted as latest: %v", err)
	}
	// The same record IS valid for a historical query at ts1.
	if _, err := verifyMembership([]byte("target"), ts1, staleLk.Rec, d); err != nil {
		t.Fatalf("historically valid record rejected: %v", err)
	}
}

func TestAttackForgedValueDetected(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	s.Put([]byte("k"), []byte("honest"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	id := s.Engine().Runs()[0].ID
	lk, err := s.Engine().LookupRun(id, []byte("k"), record.MaxTs)
	if err != nil || !lk.Found {
		t.Fatal("honest lookup failed")
	}
	d := s.snapshotDigests()[id]
	forged := lk.Rec
	forged.Value = []byte("forged!")
	if _, err := verifyMembership([]byte("k"), record.MaxTs, forged, d); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("forged value accepted: %v", err)
	}
	// Forged timestamp also fails.
	forged = lk.Rec
	forged.Ts += 100
	if _, err := verifyMembership([]byte("k"), record.MaxTs, forged, d); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("forged timestamp accepted: %v", err)
	}
}

func TestAttackFakeNonMembershipDetected(t *testing.T) {
	// The host claims key0050 (present) is absent, presenting its honest
	// neighbours key0049/key0051 as the bracket — their leaf indices are
	// not adjacent, so the claim must fail.
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v"))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	id := s.Engine().Runs()[0].ID
	d := s.snapshotDigests()[id]
	predLk, err := s.Engine().LookupRun(id, []byte("key0049"), record.MaxTs)
	if err != nil || !predLk.Found {
		t.Fatal("pred lookup failed")
	}
	succLk, err := s.Engine().LookupRun(id, []byte("key0051"), record.MaxTs)
	if err != nil || !succLk.Found {
		t.Fatal("succ lookup failed")
	}
	fake := predLk
	fake.Found = false
	fake.Pred = &predLk.Rec
	fake.Succ = &succLk.Rec
	if err := verifyNonMembership([]byte("key0050"), record.MaxTs, fake, d); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("fake non-membership accepted: %v", err)
	}
}

func TestAttackScanOmissionDetected(t *testing.T) {
	s := mustOpenP2(t, smallCfg(nil))
	defer s.Close()
	for i := 0; i < 200; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v"))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	id := s.Engine().Runs()[0].ID
	d := s.snapshotDigests()[id]
	rs, err := s.Engine().ScanRun(id, []byte("key0050"), []byte("key0070"))
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyRunScan([]byte("key0050"), []byte("key0070"), rs, d); err != nil {
		t.Fatalf("honest scan rejected: %v", err)
	}

	// Omit an interior record.
	dropMid := rs
	dropMid.Records = append(append([]record.Record(nil), rs.Records[:10]...), rs.Records[11:]...)
	if err := verifyRunScan([]byte("key0050"), []byte("key0070"), dropMid, d); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("interior omission accepted: %v", err)
	}

	// Omit the first record (shift the range).
	dropHead := rs
	dropHead.Records = rs.Records[1:]
	if err := verifyRunScan([]byte("key0050"), []byte("key0070"), dropHead, d); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("head omission accepted: %v", err)
	}

	// Omit the tail.
	dropTail := rs
	dropTail.Records = rs.Records[:len(rs.Records)-1]
	if err := verifyRunScan([]byte("key0050"), []byte("key0070"), dropTail, d); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("tail omission accepted: %v", err)
	}

	// Forge a value inside the range.
	forge := rs
	forge.Records = append([]record.Record(nil), rs.Records...)
	forge.Records[5].Value = []byte("forged")
	if err := verifyRunScan([]byte("key0050"), []byte("key0070"), forge, d); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("forged scan value accepted: %v", err)
	}

	// Claim the whole range is empty.
	empty := rs
	empty.Records = nil
	if err := verifyRunScan([]byte("key0050"), []byte("key0070"), empty, d); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("empty-range lie accepted: %v", err)
	}
}

func TestAttackRollbackDetected(t *testing.T) {
	fs := vfs.NewMem()
	cfg := smallCfg(fs)
	s := mustOpenP2(t, cfg)
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v1"))
	}
	s.Flush()
	snapshot := fs.Clone() // the attacker snapshots an old authenticated state
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v2"))
	}
	s.Flush()
	s.Close()

	// Rollback attack: restore the old files and reopen with the same
	// (persistent) platform and counter.
	fs.Restore(snapshot)
	cfg.Platform = s.platform
	cfg.Counter = s.counter
	if _, err := Open(cfg); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("rollback not detected: %v", err)
	}
}

func TestAttackCompactionInputTamperDetected(t *testing.T) {
	fs := vfs.NewMem()
	s := mustOpenP2(t, smallCfg(fs))
	defer s.Close()
	for i := 0; i < 1000; i++ {
		s.Put([]byte(fmt.Sprintf("key%05d", i)), bytes.Repeat([]byte("v"), 32))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Tamper with an on-disk input file, then force a compaction over it.
	// Corrupt densely: most file bytes are embedded proofs, which
	// compaction legitimately ignores (it rebuilds them), so a single
	// flipped byte may not touch authenticated record content.
	names, _ := fs.List("0")
	if len(names) == 0 {
		t.Fatal("no tables")
	}
	f, _ := fs.Open(names[0])
	for off := int64(0); off < f.Size()/2; off += 37 {
		fs.Corrupt(names[0], off)
	}
	err := s.Compact(s.Engine().Runs()[0].Level)
	if err == nil {
		t.Fatal("compaction over tampered input succeeded")
	}
}

func TestAttackTrustedStateDeletionDetected(t *testing.T) {
	fs := vfs.NewMem()
	cfg := smallCfg(fs)
	s := mustOpenP2(t, cfg)
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v"))
	}
	s.Flush()
	s.Close()
	fs.Remove(trustedStateName)
	cfg.Platform = s.platform
	cfg.Counter = s.counter
	if _, err := Open(cfg); !errors.Is(err, ErrStateMissing) {
		t.Fatalf("missing trusted state not detected: %v", err)
	}
}

func TestAttackWALTamperDetected(t *testing.T) {
	fs := vfs.NewMem()
	cfg := smallCfg(fs)
	s := mustOpenP2(t, cfg)
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("b"), []byte("2"))
	s.Close() // seals state including WAL digest

	// Tamper with the WAL body: rewrite a whole valid record so the CRC
	// passes but the digest chain diverges.
	f, err := fs.Open("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the value region of the first record (CRC will catch
	// it; either CRC or digest failure is acceptable detection).
	fs.Corrupt("wal.log", f.Size()-1)
	cfg.Platform = s.platform
	cfg.Counter = s.counter
	if _, err := Open(cfg); err == nil {
		t.Fatal("tampered WAL accepted on recovery")
	}
}

// ---------------------------------------------------------------------------
// Recovery

func TestCleanRecoveryVerifies(t *testing.T) {
	fs := vfs.NewMem()
	cfg := smallCfg(fs)
	s := mustOpenP2(t, cfg)
	want := map[string]string{}
	for i := 0; i < 1500; i++ {
		key := fmt.Sprintf("key%04d", i%400)
		val := fmt.Sprintf("v%d", i)
		s.Put([]byte(key), []byte(val))
		want[key] = val
	}
	s.Close()

	cfg.Platform = s.platform
	cfg.Counter = s.counter
	s2 := mustOpenP2(t, cfg)
	defer s2.Close()
	if n := s2.UnverifiedReplay(); n != 0 {
		t.Fatalf("clean close left %d unverified records", n)
	}
	for key, val := range want {
		res, err := s2.Get([]byte(key))
		if err != nil || !res.Found || string(res.Value) != val {
			t.Fatalf("after recovery %q: %+v err=%v", key, res, err)
		}
	}
	// Writes continue and verify.
	if _, err := s2.Put([]byte("post"), []byte("recovery")); err != nil {
		t.Fatal(err)
	}
	res, err := s2.Get([]byte("post"))
	if err != nil || !res.Found {
		t.Fatalf("post-recovery put/get: %+v err=%v", res, err)
	}
}

func TestUncleanRecoveryCountsUnverifiedSuffix(t *testing.T) {
	fs := vfs.NewMem()
	cfg := smallCfg(fs)
	cfg.CounterInterval = 10
	s := mustOpenP2(t, cfg)
	for i := 0; i < 25; i++ { // interval 10: seals at 10 and 20; 5 dangling
		s.Put([]byte(fmt.Sprintf("key%02d", i)), []byte("v"))
	}
	// Simulate crash: do NOT Close (no final seal).
	s.Engine().Close()

	cfg2 := smallCfg(fs)
	cfg2.Platform = s.platform
	cfg2.Counter = s.counter
	s2 := mustOpenP2(t, cfg2)
	defer s2.Close()
	if n := s2.UnverifiedReplay(); n != 5 {
		t.Fatalf("unverified suffix = %d, want 5", n)
	}

	// Strict mode refuses the same recovery.
	s2.Close()
	cfg3 := smallCfg(fs)
	cfg3.Platform = s.platform
	cfg3.Counter = s.counter
	cfg3.RequireCleanRecovery = true
	// After s2's Close the state is sealed again, so re-crash first.
	s3 := mustOpenP2(t, cfg3)
	s3.Put([]byte("zz"), []byte("dangling"))
	s3.Engine().Close() // crash without seal
	if _, err := Open(cfg3); err == nil {
		t.Fatal("strict recovery accepted unverified suffix")
	}
}

// ---------------------------------------------------------------------------
// Cross-implementation equivalence

func TestEquivalenceAcrossStores(t *testing.T) {
	mkStores := func() map[string]KV {
		p2, err := Open(smallCfg(nil))
		if err != nil {
			t.Fatal(err)
		}
		p1cfg := smallCfg(nil)
		p1cfg.CacheSize = 1 << 20
		p1, err := OpenP1(p1cfg)
		if err != nil {
			t.Fatal(err)
		}
		un, err := OpenUnsecured(smallCfg(nil))
		if err != nil {
			t.Fatal(err)
		}
		return map[string]KV{"p2": p2, "p1": p1, "unsecured": un}
	}
	stores := mkStores()
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	ref := map[string]string{}
	rnd := rand.New(rand.NewSource(42))
	for i := 0; i < 4000; i++ {
		op := rnd.Intn(10)
		key := fmt.Sprintf("key%03d", rnd.Intn(300))
		switch {
		case op < 6: // put
			val := fmt.Sprintf("v%d", i)
			ref[key] = val
			for name, s := range stores {
				if _, err := s.Put([]byte(key), []byte(val)); err != nil {
					t.Fatalf("%s put: %v", name, err)
				}
			}
		case op < 7: // delete
			delete(ref, key)
			for name, s := range stores {
				if _, err := s.Delete([]byte(key)); err != nil {
					t.Fatalf("%s delete: %v", name, err)
				}
			}
		default: // get
			for name, s := range stores {
				res, err := s.Get([]byte(key))
				if err != nil {
					t.Fatalf("%s get %q: %v", name, key, err)
				}
				want, ok := ref[key]
				if res.Found != ok || (ok && string(res.Value) != want) {
					t.Fatalf("%s get %q = (%q,%v), want (%q,%v)", name, key, res.Value, res.Found, want, ok)
				}
			}
		}
	}
	// Final scan equivalence.
	for name, s := range stores {
		out, err := s.Scan([]byte("key000"), []byte("key299"))
		if err != nil {
			t.Fatalf("%s scan: %v", name, err)
		}
		if len(out) != len(ref) {
			t.Fatalf("%s scan %d results, want %d", name, len(out), len(ref))
		}
		for _, r := range out {
			if ref[string(r.Key)] != string(r.Value) {
				t.Fatalf("%s scan %q = %q want %q", name, r.Key, r.Value, ref[string(r.Key)])
			}
		}
	}
}

func TestProofEncodeDecodeRoundTrip(t *testing.T) {
	p := &EmbeddedProof{
		LeafIndex: 12345,
		Newer:     []ChainEntry{{Ts: 7}, {Ts: 9}},
		Path:      nil,
	}
	p.Newer[0].RecDigest[0] = 0xaa
	p.Inner[3] = 0xbb
	enc := p.Encode()
	got, err := DecodeProof(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.LeafIndex != p.LeafIndex || len(got.Newer) != 2 || got.Newer[0].Ts != 7 ||
		got.Newer[0].RecDigest != p.Newer[0].RecDigest || got.Inner != p.Inner {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Truncations rejected.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeProof(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
