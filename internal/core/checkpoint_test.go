package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// exportBuf exports s into a fresh buffer.
func exportBuf(t *testing.T, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.ExportCheckpoint(&buf, 0, 1); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.Bytes()
}

// restoreOpen restores ckpt into a fresh MemFS and opens the result as a
// P2 store sharing the leader's platform.
func restoreOpen(t *testing.T, ckpt []byte, platform *sgx.Platform) (*Store, vfs.FS) {
	t.Helper()
	fs := vfs.NewMem()
	ctr := sgx.NewMonotonicCounter()
	if err := RestoreCheckpoint(bytes.NewReader(ckpt), RestoreConfig{
		FS: fs, Platform: platform, Counter: ctr,
	}); err != nil {
		t.Fatalf("restore: %v", err)
	}
	cfg := smallCfg(fs)
	cfg.Platform = platform
	cfg.Counter = ctr
	f, err := Open(cfg)
	if err != nil {
		t.Fatalf("open restored: %v", err)
	}
	return f, fs
}

// TestCheckpointRoundTrip bootstraps a follower from a checkpoint carrying
// both flushed runs and a live WAL tail, and verifies every key (current
// and historical versions) reads back identically and verified.
func TestCheckpointRoundTrip(t *testing.T) {
	s := mustOpenP2(t, smallCfg(vfs.NewMem()))
	defer s.Close()

	const n = 400
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		if _, err := s.Put(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites and deletes exercise version chains and tombstones.
	for i := 0; i < n; i += 3 {
		k := []byte(fmt.Sprintf("key-%05d", i))
		if _, err := s.Put(k, []byte(fmt.Sprintf("val2-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 7 {
		if _, err := s.Delete([]byte(fmt.Sprintf("key-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}

	f, _ := restoreOpen(t, exportBuf(t, s), s.platform)
	defer f.Close()

	if got, want := f.engine.AppliedTs(), s.engine.AppliedTs(); got != want {
		t.Fatalf("follower frontier %d, leader %d", got, want)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		lr, err := s.Get(k)
		if err != nil {
			t.Fatalf("leader get %s: %v", k, err)
		}
		fr, err := f.Get(k)
		if err != nil {
			t.Fatalf("follower get %s: %v", k, err)
		}
		if lr.Found != fr.Found || !bytes.Equal(lr.Value, fr.Value) || lr.Ts != fr.Ts {
			t.Fatalf("divergence at %s: leader %+v follower %+v", k, lr, fr)
		}
	}
	// Scans too.
	ls, err := s.Scan([]byte("key-"), []byte("key-99999"))
	if err != nil {
		t.Fatal(err)
	}
	fscan, err := f.Scan([]byte("key-"), []byte("key-99999"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != len(fscan) {
		t.Fatalf("scan length %d vs %d", len(ls), len(fscan))
	}
	for i := range ls {
		if !bytes.Equal(ls[i].Key, fscan[i].Key) || !bytes.Equal(ls[i].Value, fscan[i].Value) || ls[i].Ts != fscan[i].Ts {
			t.Fatalf("scan divergence at %d", i)
		}
	}
}

// TestCheckpointEmptyStore bootstraps from a store with no writes at all.
func TestCheckpointEmptyStore(t *testing.T) {
	s := mustOpenP2(t, smallCfg(vfs.NewMem()))
	defer s.Close()
	f, _ := restoreOpen(t, exportBuf(t, s), s.platform)
	defer f.Close()
	r, err := f.Get([]byte("missing"))
	if err != nil || r.Found {
		t.Fatalf("expected clean miss, got %+v err %v", r, err)
	}
}

// TestCheckpointTamperDetected flips one byte at various offsets of the
// stream and requires every corruption to be rejected.
func TestCheckpointTamperDetected(t *testing.T) {
	s := mustOpenP2(t, smallCfg(vfs.NewMem()))
	defer s.Close()
	for i := 0; i < 300; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key-%05d", i)), bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	ckpt := exportBuf(t, s)

	// Header byte, attestation report byte, an early table byte, and a
	// late WAL byte.
	offsets := []int{16, len(ckpt) / 3, len(ckpt) / 2, len(ckpt) - 10}
	for _, off := range offsets {
		mut := append([]byte(nil), ckpt...)
		mut[off] ^= 0x40
		fs := vfs.NewMem()
		err := RestoreCheckpoint(bytes.NewReader(mut), RestoreConfig{
			FS: fs, Platform: s.platform, Counter: sgx.NewMonotonicCounter(),
		})
		if err == nil {
			t.Fatalf("tamper at offset %d accepted", off)
		}
		if !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("tamper at offset %d: error %v does not wrap ErrAuthFailed", off, err)
		}
		// A failed restore must not leave a directory that passes for
		// bootstrapped.
		if !NeedsBootstrap(fs) {
			t.Fatalf("tamper at offset %d left sealed state behind", off)
		}
	}
}

// TestCheckpointShardMismatchRejected: the attested shard identity in the
// header must match what the restore expects — a transport serving shard
// 0's checkpoint to a follower bootstrapping shard 1 (or a follower
// configured with the wrong partition count) is rejected, not installed.
func TestCheckpointShardMismatchRejected(t *testing.T) {
	s := mustOpenP2(t, smallCfg(vfs.NewMem()))
	defer s.Close()
	if _, err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.ExportCheckpoint(&buf, 0, 2); err != nil { // shard 0 of 2
		t.Fatalf("export: %v", err)
	}
	ckpt := buf.Bytes()

	for _, tc := range []struct {
		name          string
		shard, shards int
	}{
		{"wrong shard", 1, 2},
		{"wrong shard count", 0, 4},
		{"unsharded expectation", 0, 1},
	} {
		fs := vfs.NewMem()
		err := RestoreCheckpoint(bytes.NewReader(ckpt), RestoreConfig{
			FS: fs, Platform: s.platform, Counter: sgx.NewMonotonicCounter(),
			Shard: tc.shard, Shards: tc.shards,
		})
		if !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("%s: restore error %v, want auth failure", tc.name, err)
		}
		if !NeedsBootstrap(fs) {
			t.Fatalf("%s: rejected restore left sealed state", tc.name)
		}
	}

	// The matching identity still restores.
	if err := RestoreCheckpoint(bytes.NewReader(ckpt), RestoreConfig{
		FS: vfs.NewMem(), Platform: s.platform, Counter: sgx.NewMonotonicCounter(),
		Shard: 0, Shards: 2,
	}); err != nil {
		t.Fatalf("matching shard identity rejected: %v", err)
	}
}

// TestCheckpointWrongPlatformRejected: a follower whose platform does not
// share the leader's root of trust must reject the header outright.
func TestCheckpointWrongPlatformRejected(t *testing.T) {
	s := mustOpenP2(t, smallCfg(vfs.NewMem()))
	defer s.Close()
	if _, err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	other, err := sgx.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	rerr := RestoreCheckpoint(bytes.NewReader(exportBuf(t, s)), RestoreConfig{
		FS: vfs.NewMem(), Platform: other, Counter: sgx.NewMonotonicCounter(),
	})
	if !errors.Is(rerr, ErrAuthFailed) {
		t.Fatalf("foreign platform restore: got %v", rerr)
	}
}

// TestCheckpointSharedSecretPlatforms exercises the cross-process shape:
// leader and follower construct their platforms independently from the
// same secret.
func TestCheckpointSharedSecretPlatforms(t *testing.T) {
	leaderPlat := sgx.NewPlatformFromSecret([]byte("repl-secret"))
	cfg := smallCfg(vfs.NewMem())
	cfg.Platform = leaderPlat
	s := mustOpenP2(t, cfg)
	defer s.Close()
	if _, err := s.Put([]byte("alpha"), []byte("beta")); err != nil {
		t.Fatal(err)
	}
	followerPlat := sgx.NewPlatformFromSecret([]byte("repl-secret"))
	f, _ := restoreOpen(t, exportBuf(t, s), followerPlat)
	defer f.Close()
	r, err := f.Get([]byte("alpha"))
	if err != nil || !r.Found || string(r.Value) != "beta" {
		t.Fatalf("follower read: %+v err %v", r, err)
	}
}
