package core

import (
	"elsm/internal/lsm"
)

// BatchOp is one operation of an atomic grouped write: a set, or a
// tombstone when Delete is true.
type BatchOp = lsm.BatchOp

// ApplyBatch applies a group of writes in ONE enclave round trip, riding
// the engine's cross-client group-commit pipeline: the batch extends the
// WAL digest chain per record but shares a single marker-terminated group
// append+fsync — and at most one monotonic-counter bump, paid in
// OnGroupCommit after the group is durable — with every concurrent commit
// that joined the same group. It returns the batch's commit timestamp —
// the trusted timestamp of its last record.
func (c *Store) ApplyBatch(ops []BatchOp) (uint64, error) {
	var ts uint64
	var err error
	c.enclave.ECall(func() { ts, err = c.engine.ApplyBatch(ops) })
	return ts, err
}

// ApplyBatch implements KV for eLSM-P1: one ECall for the whole group.
func (s *StoreP1) ApplyBatch(ops []BatchOp) (uint64, error) {
	var ts uint64
	var err error
	s.enclave.ECall(func() { ts, err = s.engine.ApplyBatch(ops) })
	return ts, err
}

// ApplyBatch implements KV for the unsecured baseline.
func (s *Unsecured) ApplyBatch(ops []BatchOp) (uint64, error) {
	return s.engine.ApplyBatch(ops)
}
