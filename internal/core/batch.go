package core

import (
	"context"

	"elsm/internal/lsm"
)

// BatchOp is one operation of an atomic grouped write: a set, or a
// tombstone when Delete is true.
type BatchOp = lsm.BatchOp

// NewResolvedFuture returns a future that is already accepted and resolved
// (for no-op commits and stores without a durability pipeline).
func NewResolvedFuture(ts uint64, err error) *CommitFuture {
	return lsm.NewResolvedFuture(ts, err)
}

// ApplyBatch applies a group of writes in ONE enclave round trip, riding
// the engine's cross-client group-commit pipeline: the batch extends the
// WAL digest chain per record but shares a single marker-terminated group
// append+fsync — and at most one monotonic-counter bump, paid in
// OnGroupCommit after the group is durable — with every concurrent commit
// that joined the same group. It returns the batch's commit timestamp —
// the trusted timestamp of its last record.
func (c *Store) ApplyBatch(ops []BatchOp) (uint64, error) { return c.ApplyBatchCtx(nil, ops) }

// ApplyBatchCtx is ApplyBatch with commit-queue cancellation: a context
// cancelled while the batch still waits in the queue withdraws it (nothing
// is written); once claimed by the committer the batch completes regardless.
func (c *Store) ApplyBatchCtx(ctx context.Context, ops []BatchOp) (uint64, error) {
	var ts uint64
	var err error
	c.enclave.ECall(func() { ts, err = c.engine.ApplyBatchCtx(ctx, ops) })
	return ts, err
}

// CommitAsync implements KV for eLSM-P2: the batch is appended and digest-
// chained like a synchronous commit, but the caller gets a CommitFuture
// acknowledged at append (timestamp assigned) and resolved at fsync — the
// engine pipelines the next group's WAL append with this group's fsync.
func (c *Store) CommitAsync(ctx context.Context, ops []BatchOp) (*CommitFuture, error) {
	var fut *CommitFuture
	var err error
	c.enclave.ECall(func() { fut, err = c.engine.CommitAsync(ctx, ops) })
	return fut, err
}

// ApplyBatch implements KV for eLSM-P1: one ECall for the whole group.
func (s *StoreP1) ApplyBatch(ops []BatchOp) (uint64, error) { return s.ApplyBatchCtx(nil, ops) }

// ApplyBatchCtx implements KV for eLSM-P1.
func (s *StoreP1) ApplyBatchCtx(ctx context.Context, ops []BatchOp) (uint64, error) {
	var ts uint64
	var err error
	s.enclave.ECall(func() { ts, err = s.engine.ApplyBatchCtx(ctx, ops) })
	return ts, err
}

// CommitAsync implements KV for eLSM-P1.
func (s *StoreP1) CommitAsync(ctx context.Context, ops []BatchOp) (*CommitFuture, error) {
	var fut *CommitFuture
	var err error
	s.enclave.ECall(func() { fut, err = s.engine.CommitAsync(ctx, ops) })
	return fut, err
}

// ApplyBatch implements KV for the unsecured baseline.
func (s *Unsecured) ApplyBatch(ops []BatchOp) (uint64, error) {
	return s.engine.ApplyBatch(ops)
}

// ApplyBatchCtx implements KV for the unsecured baseline.
func (s *Unsecured) ApplyBatchCtx(ctx context.Context, ops []BatchOp) (uint64, error) {
	return s.engine.ApplyBatchCtx(ctx, ops)
}

// CommitAsync implements KV for the unsecured baseline.
func (s *Unsecured) CommitAsync(ctx context.Context, ops []BatchOp) (*CommitFuture, error) {
	return s.engine.CommitAsync(ctx, ops)
}
