package core

import (
	"elsm/internal/lsm"
)

// BatchOp is one operation of an atomic grouped write: a set, or a
// tombstone when Delete is true.
type BatchOp = lsm.BatchOp

// ApplyBatch applies a group of writes in ONE enclave round trip: the
// engine acquires its write lock once, extends the WAL digest chain per
// record but performs a single group append+fsync of the untrusted log, and
// at most one monotonic-counter bump is paid for the whole group (deferred
// from OnWALAppend to the end of the batch). It returns the batch's commit
// timestamp — the trusted timestamp of its last record.
func (c *Store) ApplyBatch(ops []BatchOp) (uint64, error) {
	c.mu.Lock()
	c.batchDepth++
	c.mu.Unlock()
	var ts uint64
	var err error
	c.enclave.ECall(func() { ts, err = c.engine.ApplyBatch(ops) })
	c.mu.Lock()
	c.batchDepth--
	bump := c.pendingBump && c.batchDepth == 0
	if bump {
		c.pendingBump = false
	}
	c.mu.Unlock()
	if bump {
		c.commitState()
	}
	return ts, err
}

// ApplyBatch implements KV for eLSM-P1: one ECall for the whole group.
func (s *StoreP1) ApplyBatch(ops []BatchOp) (uint64, error) {
	var ts uint64
	var err error
	s.enclave.ECall(func() { ts, err = s.engine.ApplyBatch(ops) })
	return ts, err
}

// ApplyBatch implements KV for the unsecured baseline.
func (s *Unsecured) ApplyBatch(ops []BatchOp) (uint64, error) {
	return s.engine.ApplyBatch(ops)
}
