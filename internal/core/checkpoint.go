// Checkpoint export/import and replicated-group application — the trusted
// half of the replication subsystem (internal/repl carries the transport).
//
// A checkpoint is a portable, attested serialization of one consistent cut
// of a leader: the pinned version's SSTable files and manifest, the digest
// frontier covering them, and the live WAL tail (the records between the
// run frontier and the applied frontier) together with its chain digest.
// Nothing in the stream is trusted as carried: the header travels under an
// enclave attestation report, and the importer re-derives every run's
// Merkle digest from the shipped bytes and re-hashes the WAL chain before
// sealing the state as its own — so a follower bootstraps over an untrusted
// transport with exactly the §5.6 trust base (sealed digests + monotonic
// counter), never trusting the wire.
package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"elsm/internal/hashutil"
	"elsm/internal/lsm"
	"elsm/internal/record"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
	"elsm/internal/wal"
)

// checkpointMagic heads every checkpoint stream.
const checkpointMagic = "ELSMCKP1"

// maxCheckpointHeader bounds the header a reader will buffer.
const maxCheckpointHeader = 64 << 20

// ErrCheckpointCorrupt reports a structurally invalid or tampered
// checkpoint stream. It wraps ErrAuthFailed: a corrupt checkpoint is
// indistinguishable from a forged one.
var ErrCheckpointCorrupt = fmt.Errorf("%w: checkpoint rejected", ErrAuthFailed)

// checkpointFile is one raw file section of the stream, in order. SHA256
// binds the section's raw bytes to the attested header: the semantic
// checks (Merkle rebuild, WAL chain replay) cover record content but not
// every container byte — embedded proofs and framing are derived data the
// digests cannot cover — so without it a flip there would only surface at
// the follower's first read of the damaged region.
type checkpointFile struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	SHA256 []byte `json:"sha256"`
}

// checkpointHeader is the attested description of the stream: the trusted
// frontier the importer verifies the raw bytes against.
type checkpointHeader struct {
	// Shard and Shards bind the checkpoint to one partition of one
	// topology; the attestation report covers them, so an untrusted
	// transport cannot serve shard 0's (individually valid) checkpoint to
	// a follower bootstrapping shard 1.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Epoch is the leader's replication epoch at capture time. The
	// follower adopts it as its own sealed epoch, so frames shipped by a
	// leader demoted before this checkpoint was taken (an older epoch) are
	// fenced out at the first tailed frame.
	Epoch uint64 `json:"epoch,omitempty"`
	// LastTs is the applied frontier T of the captured cut; RunFrontier is
	// F = T − len(WAL tail), the highest timestamp covered by the runs.
	LastTs      uint64 `json:"lastTs"`
	RunFrontier uint64 `json:"runFrontier"`
	// WALAppends counts the tail records; WALDigest is their hash chain
	// from zero — the durable WAL digest the leader's counter is bound to.
	WALAppends uint64               `json:"walAppends"`
	WALDigest  hashutil.Hash        `json:"walDigest"`
	Digests    map[uint64]runDigest `json:"digests"`
	Manifest   []byte               `json:"manifest"`
	Tables     []checkpointFile     `json:"tables"`
	WALFiles   []checkpointFile     `json:"walFiles"`
}

// AttestPayload mints an attestation report binding SHA-256(payload) to
// this store's enclave measurement — the stand-in for local attestation of
// replication messages (checkpoint headers, shipped group frames).
func (c *Store) AttestPayload(payload []byte) sgx.Report {
	var data [64]byte
	sum := sha256.Sum256(payload)
	copy(data[:32], sum[:])
	return c.platform.CreateReport(c.measurement, data)
}

// VerifyPeerPayload checks a report minted by a peer enclave on a platform
// sharing this store's root of trust: MAC, measurement equality (same
// enclave code) and payload binding.
func (c *Store) VerifyPeerPayload(rep sgx.Report, payload []byte) error {
	if err := c.platform.VerifyReport(rep); err != nil {
		return fmt.Errorf("%w: %v", ErrAuthFailed, err)
	}
	if rep.Measurement != c.measurement {
		return fmt.Errorf("%w: peer measurement mismatch", ErrAuthFailed)
	}
	var data [64]byte
	sum := sha256.Sum256(payload)
	copy(data[:32], sum[:])
	if rep.Data != data {
		return fmt.Errorf("%w: report payload mismatch", ErrAuthFailed)
	}
	return nil
}

// verifyPeerPayload is the package-level form used before a Store exists
// (checkpoint import).
func verifyPeerPayload(platform *sgx.Platform, m sgx.Measurement, rep sgx.Report, payload []byte) error {
	if err := platform.VerifyReport(rep); err != nil {
		return fmt.Errorf("%w: %v", ErrAuthFailed, err)
	}
	if rep.Measurement != m {
		return fmt.Errorf("%w: peer measurement mismatch", ErrAuthFailed)
	}
	var data [64]byte
	sum := sha256.Sum256(payload)
	copy(data[:32], sum[:])
	if rep.Data != data {
		return fmt.Errorf("%w: report payload mismatch", ErrAuthFailed)
	}
	return nil
}

// ApplyReplicated applies one authenticated shipped commit group through
// the full local pipeline (digest chain, WAL append, fsync, seal cadence).
// The transport layer has already verified the group's frame; the engine
// still enforces timestamp contiguity with the applied frontier.
func (c *Store) ApplyReplicated(recs []record.Record) error {
	var err error
	c.enclave.ECall(func() { err = c.engine.ApplyReplicated(recs) })
	return err
}

// SealState forces a commitState seal — the follower's durability hook
// after applying shipped groups, bounding what a restart must re-ship.
func (c *Store) SealState() {
	c.enclave.ECall(c.commitState)
}

// ---------------------------------------------------------------------------
// Export

// ExportCheckpoint serializes a consistent cut of the store into w: the
// attested header, then the pinned SSTable files, then the live WAL tail,
// all raw. shard and shards name this store's partition within the
// leader's topology (0, 1 for an unsharded store) and travel attested in
// the header. The capture window quiesces the commit pipeline; streaming
// happens outside all engine locks against pinned files.
func (c *Store) ExportCheckpoint(w io.Writer, shard, shards int) error {
	if shards <= 0 {
		shards = 1
	}
	var digs map[uint64]runDigest
	var walDigest hashutil.Hash
	var epoch uint64
	src, err := c.engine.CaptureCheckpoint(func() error {
		c.mu.Lock()
		// The pipeline is drained: the durable frontier IS the tip.
		digs = c.snap.Load().digests
		walDigest = c.durableDigest
		epoch = c.epoch.Load()
		c.mu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	defer src.Release()

	// Re-derive the tail extent from the captured bytes: replaying the
	// copied WAL files must reproduce the trusted chain (anything else
	// means the untrusted log was tampered with under us — fail stop, do
	// not ship), and the record count fixes the run frontier F.
	lastTs := src.Snap.Ts()
	chain := hashutil.Zero
	var tail uint64
	wantTs := uint64(0) // first record fixes the base
	for i := range src.WALData {
		info, rerr := wal.ReplayBytes(src.WALData[i], chain, func(rec record.Record) error {
			if wantTs != 0 && rec.Ts != wantTs {
				return fmt.Errorf("%w: wal tail not contiguous at ts %d", ErrCheckpointCorrupt, rec.Ts)
			}
			wantTs = rec.Ts + 1
			return nil
		})
		if rerr != nil {
			return fmt.Errorf("checkpoint export: wal %s: %w", src.WALNames[i], rerr)
		}
		if info.CommittedSize != int64(len(src.WALData[i])) {
			return fmt.Errorf("%w: wal %s torn in quiesced capture", ErrCheckpointCorrupt, src.WALNames[i])
		}
		chain = info.Digest
		tail += uint64(info.Records)
	}
	if chain != walDigest {
		return fmt.Errorf("%w: wal chain does not match trusted digest", ErrCheckpointCorrupt)
	}
	if tail > 0 && wantTs-1 != lastTs {
		return fmt.Errorf("%w: wal tail ends at ts %d, applied frontier is %d",
			ErrCheckpointCorrupt, wantTs-1, lastTs)
	}
	frontier := lastTs - tail

	manifest, err := src.Snap.EncodeManifest(frontier)
	if err != nil {
		return fmt.Errorf("checkpoint export: %w", err)
	}
	hdr := checkpointHeader{
		Shard:       shard,
		Shards:      shards,
		Epoch:       epoch,
		LastTs:      lastTs,
		RunFrontier: frontier,
		WALAppends:  tail,
		WALDigest:   walDigest,
		Digests:     digs,
		Manifest:    manifest,
	}
	for _, run := range src.Snap.CheckpointRuns() {
		for _, tbl := range run.Tables {
			// Hash the pinned (immutable) file now; the write loop below
			// re-reads it, so large stores never hold every table in memory.
			data, rerr := c.engine.ReadFileBytes(tbl.Name)
			if rerr != nil {
				return fmt.Errorf("checkpoint export: table %s: %w", tbl.Name, rerr)
			}
			sum := sha256.Sum256(data)
			hdr.Tables = append(hdr.Tables, checkpointFile{Name: tbl.Name, Size: tbl.Size, SHA256: sum[:]})
		}
	}
	for i := range src.WALNames {
		sum := sha256.Sum256(src.WALData[i])
		hdr.WALFiles = append(hdr.WALFiles, checkpointFile{
			Name: src.WALNames[i], Size: int64(len(src.WALData[i])), SHA256: sum[:],
		})
	}
	hdrBytes, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("checkpoint export: header marshal: %w", err)
	}
	rep := c.AttestPayload(hdrBytes)

	if _, err := io.WriteString(w, checkpointMagic); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(hdrBytes)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.Write(hdrBytes); err != nil {
		return err
	}
	if err := writeReport(w, rep); err != nil {
		return err
	}
	for _, tbl := range hdr.Tables {
		data, rerr := c.engine.ReadFileBytes(tbl.Name)
		if rerr != nil {
			return fmt.Errorf("checkpoint export: table %s: %w", tbl.Name, rerr)
		}
		if int64(len(data)) != tbl.Size {
			return fmt.Errorf("%w: table %s is %d bytes, manifest says %d",
				ErrCheckpointCorrupt, tbl.Name, len(data), tbl.Size)
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	for i := range src.WALData {
		if _, err := w.Write(src.WALData[i]); err != nil {
			return err
		}
	}
	return nil
}

// writeReport serializes a report as fixed 128 bytes.
func writeReport(w io.Writer, rep sgx.Report) error {
	var buf [128]byte
	copy(buf[:32], rep.Measurement[:])
	copy(buf[32:96], rep.Data[:])
	copy(buf[96:], rep.MAC[:])
	_, err := w.Write(buf[:])
	return err
}

// readReport reads the fixed 128-byte report form.
func readReport(r io.Reader) (sgx.Report, error) {
	var buf [128]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return sgx.Report{}, err
	}
	var rep sgx.Report
	copy(rep.Measurement[:], buf[:32])
	copy(rep.Data[:], buf[32:96])
	copy(rep.MAC[:], buf[96:])
	return rep, nil
}

// ---------------------------------------------------------------------------
// Import

// RestoreConfig parameterizes a checkpoint import.
type RestoreConfig struct {
	// FS is the follower's (empty) data directory.
	FS vfs.FS
	// Platform is the shared root of trust: it must verify reports minted
	// by the leader's enclave (sgx.NewPlatformFromSecret on both sides, or
	// the same instance in process) and is what the follower seals under.
	Platform *sgx.Platform
	// Counter is the follower's own monotonic counter; the imported state
	// is sealed against it.
	Counter *sgx.MonotonicCounter
	// Enclave hosts the verification work; nil uses an unlimited enclave.
	Enclave *sgx.Enclave
	// Shard and Shards are the partition identity this restore expects
	// (Shards 0 means 1). The attested header must match exactly: a
	// checkpoint exported for another shard — or by a leader with a
	// different partition count — is rejected, so a transport cannot swap
	// shard streams and opts mismatched to the leader's topology surface
	// as an error instead of an incomplete replica.
	Shard  int
	Shards int
}

// restoreApplyChunk bounds the records one imported WAL group carries.
const restoreApplyChunk = 4096

// NeedsBootstrap reports whether fs lacks sealed trusted state — the
// signal that a follower directory must be (re-)restored from a
// checkpoint. A crash mid-restore leaves no TRUSTED.bin (it is written
// last), so an interrupted import also reports true.
func NeedsBootstrap(fs vfs.FS) bool { return !fs.Exists(trustedStateName) }

// WipeFS removes every file under fs — re-bootstrap hygiene before
// restoring over a partial or stale follower directory.
func WipeFS(fs vfs.FS) error {
	names, err := fs.List("")
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := fs.Remove(name); err != nil {
			return err
		}
	}
	return nil
}

// RestoreCheckpoint imports a checkpoint stream into cfg.FS, verifying
// every byte against the attested header before sealing the state as the
// follower's own:
//
//  1. the header's attestation report is checked (shared platform, same
//     enclave measurement);
//  2. SSTable files and the manifest are installed and every run's Merkle
//     digest is REBUILT from the installed bytes and compared against the
//     attested frontier — a tampered or truncated run fails the import;
//  3. the shipped WAL tail's hash chain is recomputed from zero and
//     compared against the attested durable digest, then the records are
//     re-applied through the follower's own pipeline (its own WAL, its own
//     chain — byte-compatible by construction);
//  4. only then is the trusted state sealed under the follower's platform,
//     bound to ITS monotonic counter, and written. TRUSTED.bin is written
//     last: a crash anywhere before leaves a directory that
//     NeedsBootstrap reports as unseeded, so restart re-restores from
//     scratch instead of trusting a torn import.
func RestoreCheckpoint(r io.Reader, cfg RestoreConfig) error {
	if cfg.FS == nil || cfg.Platform == nil || cfg.Counter == nil {
		return errors.New("core: restore requires FS, Platform and Counter")
	}
	enclave := cfg.Enclave
	if enclave == nil {
		enclave = sgx.NewUnlimited()
	}
	measurement := sgx.Measure([]byte("elsm-p2"))

	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("%w: short magic: %v", ErrCheckpointCorrupt, err)
	}
	if string(magic[:]) != checkpointMagic {
		return fmt.Errorf("%w: bad magic", ErrCheckpointCorrupt)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return fmt.Errorf("%w: short header length: %v", ErrCheckpointCorrupt, err)
	}
	hdrLen := binary.BigEndian.Uint32(lenBuf[:])
	if hdrLen == 0 || hdrLen > maxCheckpointHeader {
		return fmt.Errorf("%w: implausible header length %d", ErrCheckpointCorrupt, hdrLen)
	}
	hdrBytes := make([]byte, hdrLen)
	if _, err := io.ReadFull(r, hdrBytes); err != nil {
		return fmt.Errorf("%w: short header: %v", ErrCheckpointCorrupt, err)
	}
	rep, err := readReport(r)
	if err != nil {
		return fmt.Errorf("%w: short report: %v", ErrCheckpointCorrupt, err)
	}
	if err := verifyPeerPayload(cfg.Platform, measurement, rep, hdrBytes); err != nil {
		return err
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return fmt.Errorf("%w: header decode: %v", ErrCheckpointCorrupt, err)
	}
	wantShards := cfg.Shards
	if wantShards <= 0 {
		wantShards = 1
	}
	hdrShards := hdr.Shards
	if hdrShards <= 0 {
		hdrShards = 1
	}
	if hdr.Shard != cfg.Shard || hdrShards != wantShards {
		return fmt.Errorf("%w: checkpoint is for shard %d of %d, restoring shard %d of %d",
			ErrCheckpointCorrupt, hdr.Shard, hdrShards, cfg.Shard, wantShards)
	}
	if hdr.RunFrontier+hdr.WALAppends != hdr.LastTs {
		return fmt.Errorf("%w: inconsistent frontiers", ErrCheckpointCorrupt)
	}

	// Install the raw files. Their content is untrusted until step 2's
	// digest rebuild passes.
	for _, tbl := range hdr.Tables {
		if !safeCheckpointName(tbl.Name) {
			return fmt.Errorf("%w: unsafe file name %q", ErrCheckpointCorrupt, tbl.Name)
		}
		if err := copySection(r, cfg.FS, tbl.Name, tbl.Size, tbl.SHA256); err != nil {
			return err
		}
	}
	if err := writeFile(cfg.FS, "MANIFEST", hdr.Manifest); err != nil {
		return err
	}

	// Buffer and pre-verify the WAL tail before touching the engine: the
	// chain from zero must reproduce the attested durable digest exactly,
	// and the records must tile (RunFrontier, LastTs] contiguously.
	var tailRecs []record.Record
	chain := hashutil.Zero
	wantTs := hdr.RunFrontier + 1
	for _, wf := range hdr.WALFiles {
		if wf.Size < 0 || wf.Size > maxCheckpointHeader {
			return fmt.Errorf("%w: implausible wal section size %d", ErrCheckpointCorrupt, wf.Size)
		}
		data := make([]byte, wf.Size)
		if _, err := io.ReadFull(r, data); err != nil {
			return fmt.Errorf("%w: short wal section: %v", ErrCheckpointCorrupt, err)
		}
		if err := checkSectionSHA(wf.Name, data, wf.SHA256); err != nil {
			return err
		}
		info, rerr := wal.ReplayBytes(data, chain, func(rec record.Record) error {
			if rec.Ts != wantTs {
				return fmt.Errorf("%w: wal tail not contiguous at ts %d (want %d)",
					ErrCheckpointCorrupt, rec.Ts, wantTs)
			}
			wantTs++
			tailRecs = append(tailRecs, rec)
			return nil
		})
		if rerr != nil {
			return fmt.Errorf("%w: wal section %s: %v", ErrCheckpointCorrupt, wf.Name, rerr)
		}
		if info.CommittedSize != int64(len(data)) || info.TornRecords > 0 {
			return fmt.Errorf("%w: wal section %s torn", ErrCheckpointCorrupt, wf.Name)
		}
		chain = info.Digest
	}
	if chain != hdr.WALDigest {
		return fmt.Errorf("%w: wal chain mismatch", ErrCheckpointCorrupt)
	}
	if uint64(len(tailRecs)) != hdr.WALAppends {
		return fmt.Errorf("%w: wal tail carries %d records, header says %d",
			ErrCheckpointCorrupt, len(tailRecs), hdr.WALAppends)
	}

	// Open the installed version raw (no auth layer: digests are checked
	// here, against the attested header, not against engine callbacks) and
	// rebuild every run's Merkle digest from the shipped bytes. The
	// oversized memtable and disabled compaction keep the engine from
	// reshaping the version underneath the verification pass.
	memCap := 1 << 20
	for _, wf := range hdr.WALFiles {
		memCap += int(wf.Size) * 2
	}
	eng, err := lsm.Open(lsm.Options{
		FS:                cfg.FS,
		Enclave:           enclave,
		MemtableSize:      memCap,
		DisableCompaction: true,
	})
	if err != nil {
		return fmt.Errorf("%w: restored manifest rejected: %v", ErrCheckpointCorrupt, err)
	}
	closeEng := eng.Close
	snap := eng.AcquireSnapshot()
	refs := snap.Runs()
	if len(refs) != len(hdr.Digests) {
		snap.Release()
		closeEng()
		return fmt.Errorf("%w: %d runs installed, %d attested", ErrCheckpointCorrupt, len(refs), len(hdr.Digests))
	}
	for i, ref := range refs {
		want, ok := hdr.Digests[ref.ID]
		if !ok {
			snap.Release()
			closeEng()
			return fmt.Errorf("%w: run %d not in attested frontier", ErrCheckpointCorrupt, ref.ID)
		}
		b := newTreeBuilder(false)
		var verr error
		enclave.ECall(func() {
			verr = snap.RunRecords(i, b.Add)
		})
		if verr != nil {
			snap.Release()
			closeEng()
			return fmt.Errorf("%w: run %d stream: %v", ErrCheckpointCorrupt, ref.ID, verr)
		}
		_, got := b.Finish()
		if got != want {
			snap.Release()
			closeEng()
			return fmt.Errorf("%w: run %d digest mismatch (shipped bytes tampered)", ErrCheckpointCorrupt, ref.ID)
		}
	}
	snap.Release()

	// Re-apply the verified tail through the follower's own pipeline so
	// its WAL chain reproduces the attested digest record for record.
	for off := 0; off < len(tailRecs); off += restoreApplyChunk {
		end := off + restoreApplyChunk
		if end > len(tailRecs) {
			end = len(tailRecs)
		}
		if err := eng.ApplyReplicated(tailRecs[off:end]); err != nil {
			closeEng()
			return fmt.Errorf("checkpoint import: apply tail: %w", err)
		}
	}
	if err := closeEng(); err != nil {
		return fmt.Errorf("checkpoint import: close: %w", err)
	}

	// Seal the imported frontier as the follower's own trusted state,
	// bound to ITS counter — written last, after every verification. The
	// leader's attested epoch is adopted verbatim: it is the fencing token
	// every subsequently tailed frame must match.
	fp := stateFingerprint(hdr.Digests, hdr.WALDigest, hdr.Epoch)
	ctr, _ := cfg.Counter.Read()
	st := trustedState{
		Digests:    hdr.Digests,
		WALDigest:  hdr.WALDigest,
		WALAppends: hdr.WALAppends,
		LastTs:     hdr.LastTs,
		Counter:    ctr + 1,
		Epoch:      hdr.Epoch,
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("checkpoint import: state marshal: %w", err)
	}
	sealed, err := sgx.Seal(cfg.Platform.SealingKey(measurement), blob)
	if err != nil {
		return fmt.Errorf("checkpoint import: seal: %w", err)
	}
	// Blob first, bump second: a crash between the two leaves the blob one
	// ahead of the counter (accepted) instead of the counter ahead of the
	// blob (a false rollback). Atomic rename so a torn write cannot leave
	// a half-blob that reads as tampering.
	if err := writeSealedState(cfg.FS, sealed); err != nil {
		return fmt.Errorf("checkpoint import: seal write: %w", err)
	}
	cfg.Counter.Increment(fp)
	return nil
}

// safeCheckpointName admits only flat table-file names: no path
// separators, no reserved engine files.
func safeCheckpointName(name string) bool {
	if name == "" || strings.ContainsAny(name, "/\\") {
		return false
	}
	switch {
	case name == "MANIFEST", name == "MANIFEST.tmp", name == trustedStateName:
		return false
	case strings.HasPrefix(name, "wal"):
		return false
	}
	return strings.HasSuffix(name, ".sst")
}

// copySection streams size bytes from r into a new file, rejecting any
// section whose raw bytes do not match the attested content hash.
func copySection(r io.Reader, fs vfs.FS, name string, size int64, wantSHA []byte) error {
	if size < 0 {
		return fmt.Errorf("%w: negative section size", ErrCheckpointCorrupt)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(r, data); err != nil {
		return fmt.Errorf("%w: short section %s: %v", ErrCheckpointCorrupt, name, err)
	}
	if err := checkSectionSHA(name, data, wantSHA); err != nil {
		return err
	}
	return writeFile(fs, name, data)
}

// checkSectionSHA compares a section's raw bytes against the attested hash
// from the header. A missing hash is rejected too: a transport must not be
// able to strip the binding.
func checkSectionSHA(name string, data, wantSHA []byte) error {
	if len(wantSHA) != sha256.Size {
		return fmt.Errorf("%w: section %s lacks an attested content hash", ErrCheckpointCorrupt, name)
	}
	sum := sha256.Sum256(data)
	if !bytes.Equal(sum[:], wantSHA) {
		return fmt.Errorf("%w: section %s content hash mismatch", ErrCheckpointCorrupt, name)
	}
	return nil
}

// writeFile creates name with data, synced.
func writeFile(fs vfs.FS, name string, data []byte) error {
	f, err := fs.Create(name)
	if err != nil {
		return fmt.Errorf("checkpoint import: create %s: %w", name, err)
	}
	if _, err := f.Append(data); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint import: write %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint import: sync %s: %w", name, err)
	}
	return f.Close()
}
