// Package eleos reimplements the paper's baseline comparator (§6.1): an
// in-enclave, update-in-place sorted store in the style of Eleos (Orenbach
// et al., EuroSys'17). The entire dataset lives in enclave memory as a
// gapped sorted array with ~30% slack; reads binary-search it in place and
// writes update it in place. Eleos's SUVM avoids hardware enclave paging by
// managing its own in-enclave page cache, but still pays per-reference
// monitoring overhead and copy/crypto costs on misses — which is why the
// paper observes it trailing both eLSM variants at scale and capping out
// around 1 GB.
//
// The simulation charges: (a) a per-access monitoring cost, (b) enclave
// residency costs on the touched array region (so working sets beyond the
// EPC thrash), and (c) periodic persistence OCalls for recent writes.
package eleos

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"elsm/internal/core"
	"elsm/internal/costmodel"
	"elsm/internal/record"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// ErrCapacity is returned when the dataset exceeds MaxBytes — the paper's
// observed 1 GB Eleos scalability limit.
var ErrCapacity = errors.New("eleos: dataset exceeds supported capacity (the 1 GB limit observed in §6.2)")

// DefaultMaxBytes is the paper's 1 GB limit scaled by 1/32 (DESIGN.md).
const DefaultMaxBytes = 32 << 20

// slackFactor is the array headroom ("we leave 30% of the array space
// empty to accommodate data insertions without moving existing data").
const slackFactor = 1.3

// bucketCap is the gapped-array bucket capacity in entries; buckets are
// kept ~70% full so most inserts shift only within one bucket.
const bucketCap = 64

// Config configures the baseline.
type Config struct {
	// Enclave hosts the array; nil builds one from SGX.
	Enclave *sgx.Enclave
	SGX     sgx.Params
	// FS receives the persistence stream; nil means a fresh in-memory FS.
	FS vfs.FS
	// MaxBytes caps the dataset (DefaultMaxBytes if zero).
	MaxBytes int64
	// PersistEvery flushes the write buffer to disk after this many
	// writes (default 256).
	PersistEvery int
	// MonitorCost is SUVM's per-memory-reference monitoring overhead
	// (default 300ns when the enclave has a non-zero cost model).
	MonitorCost time.Duration
}

type entry struct {
	key []byte
	val []byte
	ts  uint64
	del bool
}

type bucket struct {
	entries []entry
}

// Store is the Eleos-style baseline. Safe for single-goroutine use (the
// paper's YCSB driver is configured per-thread; our benchmarks serialize).
type Store struct {
	cfg     Config
	enclave *sgx.Enclave
	region  *sgx.Region
	buckets []*bucket
	nextTs  uint64
	bytes   int64

	persistFile vfs.File
	dirty       int
	writeBuf    []byte

	monitor time.Duration
}

var _ core.KV = (*Store)(nil)

// Open creates an empty baseline store.
func Open(cfg Config) (*Store, error) {
	if cfg.Enclave == nil {
		cfg.Enclave = sgx.New(cfg.SGX)
	}
	if cfg.FS == nil {
		cfg.FS = vfs.NewMem()
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.PersistEvery == 0 {
		cfg.PersistEvery = 256
	}
	monitor := cfg.MonitorCost
	if monitor == 0 && !cfg.Enclave.Params().Cost.IsZero() {
		monitor = 300 * time.Nanosecond
	}
	var f vfs.File
	var err error
	cfg.Enclave.OCall(func() { f, err = cfg.FS.Create("eleos.dat") })
	if err != nil {
		return nil, fmt.Errorf("eleos: persistence file: %w", err)
	}
	s := &Store{
		cfg:         cfg,
		enclave:     cfg.Enclave,
		region:      cfg.Enclave.Alloc(0),
		buckets:     []*bucket{{}},
		persistFile: f,
		monitor:     monitor,
	}
	return s, nil
}

// touch charges SUVM costs for accessing approximately n bytes around
// byte-offset off of the array.
func (s *Store) touch(off int64, n int) {
	if s.monitor > 0 {
		costmodel.Spin(s.monitor)
	}
	size := s.region.Size()
	if size == 0 {
		return
	}
	if off >= int64(size) {
		off = int64(size) - 1
	}
	if off < 0 {
		off = 0
	}
	s.region.Touch(int(off), n)
}

// grow reserves enclave space for delta new bytes (with slack).
func (s *Store) grow(delta int) error {
	s.bytes += int64(delta)
	if s.bytes > s.cfg.MaxBytes {
		s.bytes -= int64(delta)
		return fmt.Errorf("%w: %d bytes", ErrCapacity, s.bytes+int64(delta))
	}
	s.region.Grow(int(float64(delta) * slackFactor))
	return nil
}

// locate finds the bucket index and within-bucket position for key.
func (s *Store) locate(key []byte) (int, int, bool) {
	bi := sort.Search(len(s.buckets), func(i int) bool {
		b := s.buckets[i]
		if len(b.entries) == 0 {
			return true
		}
		return bytes.Compare(b.entries[len(b.entries)-1].key, key) >= 0
	})
	if bi >= len(s.buckets) {
		bi = len(s.buckets) - 1
	}
	b := s.buckets[bi]
	ei := sort.Search(len(b.entries), func(i int) bool {
		return bytes.Compare(b.entries[i].key, key) >= 0
	})
	found := ei < len(b.entries) && bytes.Equal(b.entries[ei].key, key)
	return bi, ei, found
}

// approxOffset estimates the byte offset of a bucket in the array region.
func (s *Store) approxOffset(bi int) int64 {
	if len(s.buckets) == 0 {
		return 0
	}
	return int64(float64(bi) / float64(len(s.buckets)) * float64(s.region.Size()))
}

// Put implements core.KV: an in-place update or a gapped insert. Like the
// other enclave-hosted stores, each operation enters the enclave via an
// ECall (§6.1).
func (s *Store) Put(key, value []byte) (uint64, error) {
	var ts uint64
	var err error
	s.enclave.ECall(func() { ts, err = s.write(key, value, false) })
	return ts, err
}

// Delete implements core.KV (in-place tombstone mark, then removal).
func (s *Store) Delete(key []byte) (uint64, error) {
	var ts uint64
	var err error
	s.enclave.ECall(func() { ts, err = s.write(key, nil, true) })
	return ts, err
}

// ApplyBatch implements core.KV: the whole group is applied inside one
// ECall (Eleos is update-in-place, so the group shares a single world
// switch but gains no further amortization). Unlike the LSM-backed stores,
// a mid-group failure (e.g. capacity exhaustion) leaves the preceding ops
// applied — this baseline has no WAL to roll back from, and is only used
// for benchmark comparisons where that distinction is part of the story.
func (s *Store) ApplyBatch(ops []core.BatchOp) (uint64, error) {
	var ts uint64
	var err error
	s.enclave.ECall(func() {
		for _, op := range ops {
			if op.Delete {
				ts, err = s.write(op.Key, nil, true)
			} else {
				ts, err = s.write(op.Key, op.Value, false)
			}
			if err != nil {
				return
			}
		}
	})
	return ts, err
}

// IterAt implements core.KV. Eleos keeps no history, so the iterator serves
// a materialized snapshot of the live range (tsq applies as in GetAt only
// insofar as live versions qualify).
func (s *Store) IterAt(start, end []byte, tsq uint64) core.Iterator {
	res, err := s.Scan(start, end)
	if err == nil && tsq != record.MaxTs {
		kept := res[:0]
		for _, r := range res {
			if r.Ts <= tsq {
				kept = append(kept, r)
			}
		}
		res = kept
	}
	return core.NewSliceIter(res, err)
}

func (s *Store) write(key, value []byte, del bool) (uint64, error) {
	s.nextTs++
	ts := s.nextTs
	bi, ei, found := s.locate(key)
	// Binary search touched log(n) bucket probes; charge one bucket read.
	s.touch(s.approxOffset(bi), bucketCap*8)
	b := s.buckets[bi]
	if found {
		old := &b.entries[ei]
		delta := len(value) - len(old.val)
		if delta > 0 {
			if err := s.grow(delta); err != nil {
				return 0, err
			}
		}
		old.val = append([]byte(nil), value...)
		old.ts = ts
		old.del = del
		s.touch(s.approxOffset(bi)+int64(ei*32), len(key)+len(value))
	} else {
		if err := s.grow(len(key) + len(value) + 24); err != nil {
			return 0, err
		}
		e := entry{key: append([]byte(nil), key...), val: append([]byte(nil), value...), ts: ts, del: del}
		b.entries = append(b.entries, entry{})
		copy(b.entries[ei+1:], b.entries[ei:])
		b.entries[ei] = e
		// The in-bucket shift touches the bucket tail (update-in-place
		// write amplification).
		s.touch(s.approxOffset(bi)+int64(ei*32), (len(b.entries)-ei)*32)
		if len(b.entries) >= bucketCap {
			s.splitBucket(bi)
		}
	}
	s.bufferWrite(key, value, ts)
	return ts, nil
}

// splitBucket halves an overflowing bucket (touches the whole bucket).
func (s *Store) splitBucket(bi int) {
	b := s.buckets[bi]
	mid := len(b.entries) / 2
	right := &bucket{entries: append([]entry(nil), b.entries[mid:]...)}
	b.entries = b.entries[:mid]
	s.buckets = append(s.buckets, nil)
	copy(s.buckets[bi+2:], s.buckets[bi+1:])
	s.buckets[bi+1] = right
	s.touch(s.approxOffset(bi), bucketCap*32)
}

// bufferWrite appends to the persistence write buffer, flushing through an
// OCall when full (the paper's Eleos setup persists data periodically).
func (s *Store) bufferWrite(key, value []byte, ts uint64) {
	s.writeBuf = append(s.writeBuf, key...)
	s.writeBuf = append(s.writeBuf, value...)
	s.writeBuf = append(s.writeBuf, byte(ts), byte(ts>>8), byte(ts>>16))
	s.dirty++
	if s.dirty >= s.cfg.PersistEvery {
		buf := s.writeBuf
		costmodel.ChargeBytes(s.enclave.Params().Cost.EnclaveCopyPerKB, len(buf))
		s.enclave.OCall(func() {
			s.persistFile.Append(buf)
			s.persistFile.Sync()
		})
		s.writeBuf = s.writeBuf[:0]
		s.dirty = 0
	}
}

// Get implements core.KV.
func (s *Store) Get(key []byte) (core.Result, error) {
	return s.GetAt(key, record.MaxTs)
}

// GetAt implements core.KV. Eleos is update-in-place and keeps no history:
// a historical query returns the live version only if it is old enough.
func (s *Store) GetAt(key []byte, tsq uint64) (core.Result, error) {
	var res core.Result
	var err error
	s.enclave.ECall(func() { res, err = s.getAt(key, tsq) })
	return res, err
}

func (s *Store) getAt(key []byte, tsq uint64) (core.Result, error) {
	bi, ei, found := s.locate(key)
	// log2(buckets) probes touch scattered pages, then the bucket itself.
	probes := 1
	for n := len(s.buckets); n > 1; n /= 2 {
		probes++
	}
	for p := 0; p < probes; p++ {
		s.touch(s.approxOffset((bi*7+p*13)%max(len(s.buckets), 1)), 64)
	}
	if !found {
		return core.Result{}, nil
	}
	e := s.buckets[bi].entries[ei]
	s.touch(s.approxOffset(bi)+int64(ei*32), len(e.key)+len(e.val))
	if e.del || e.ts > tsq {
		return core.Result{}, nil
	}
	return core.Result{
		Key:   append([]byte(nil), e.key...),
		Value: append([]byte(nil), e.val...),
		Ts:    e.ts,
		Found: true,
	}, nil
}

// Scan implements core.KV.
func (s *Store) Scan(start, end []byte) ([]core.Result, error) {
	var out []core.Result
	var err error
	s.enclave.ECall(func() { out, err = s.scan(start, end) })
	return out, err
}

func (s *Store) scan(start, end []byte) ([]core.Result, error) {
	var out []core.Result
	bi, ei, _ := s.locate(start)
	for ; bi < len(s.buckets); bi++ {
		b := s.buckets[bi]
		for ; ei < len(b.entries); ei++ {
			e := b.entries[ei]
			if bytes.Compare(e.key, end) > 0 {
				return out, nil
			}
			s.touch(s.approxOffset(bi)+int64(ei*32), len(e.key)+len(e.val))
			if e.del {
				continue
			}
			out = append(out, core.Result{
				Key:   append([]byte(nil), e.key...),
				Value: append([]byte(nil), e.val...),
				Ts:    e.ts,
				Found: true,
			})
		}
		ei = 0
	}
	return out, nil
}

// BulkLoad fills an empty store from sorted records.
func (s *Store) BulkLoad(recs []record.Record) error {
	if len(s.buckets) != 1 || len(s.buckets[0].entries) != 0 {
		return fmt.Errorf("eleos: bulk load requires an empty store")
	}
	var total int64
	for i := range recs {
		total += int64(len(recs[i].Key) + len(recs[i].Value) + 24)
	}
	if total > s.cfg.MaxBytes {
		return fmt.Errorf("%w: %d bytes", ErrCapacity, total)
	}
	s.buckets = s.buckets[:0]
	target := bucketCap * 7 / 10 // leave 30% slack
	for i := 0; i < len(recs); i += target {
		endIdx := min(i+target, len(recs))
		b := &bucket{}
		for _, rec := range recs[i:endIdx] {
			if rec.Ts > s.nextTs {
				s.nextTs = rec.Ts
			}
			b.entries = append(b.entries, entry{
				key: append([]byte(nil), rec.Key...),
				val: append([]byte(nil), rec.Value...),
				ts:  rec.Ts,
				del: rec.Kind == record.KindDelete,
			})
		}
		s.buckets = append(s.buckets, b)
	}
	if len(s.buckets) == 0 {
		s.buckets = []*bucket{{}}
	}
	s.bytes = total
	s.region.Grow(int(float64(total) * slackFactor))
	// Loading wrote the whole array: bring it resident (steady state for
	// the measurement phase, like the paper's post-load scan).
	const chunk = 1 << 20
	for off := 0; off < s.region.Size(); off += chunk {
		n := chunk
		if off+n > s.region.Size() {
			n = s.region.Size() - off
		}
		s.region.Touch(off, n)
	}
	return nil
}

// Bytes returns the dataset size.
func (s *Store) Bytes() int64 { return s.bytes }

// Enclave exposes the enclave for stats inspection.
func (s *Store) Enclave() *sgx.Enclave { return s.enclave }

// Close flushes the persistence buffer.
func (s *Store) Close() error {
	if len(s.writeBuf) > 0 {
		buf := s.writeBuf
		s.enclave.OCall(func() {
			s.persistFile.Append(buf)
			s.persistFile.Sync()
		})
	}
	s.region.Free()
	return s.persistFile.Close()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
