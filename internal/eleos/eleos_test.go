package eleos

import (
	"errors"
	"fmt"
	"testing"

	"elsm/internal/record"
	"elsm/internal/sgx"
	"elsm/internal/ycsb"
)

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Enclave == nil {
		cfg.Enclave = sgx.NewUnlimited()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := mustOpen(t, Config{})
	defer s.Close()
	if _, err := s.Put([]byte("b"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put([]byte("a"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Get([]byte("a"))
	if err != nil || !res.Found || string(res.Value) != "v2" {
		t.Fatalf("get a = %+v err=%v", res, err)
	}
	if res, _ := s.Get([]byte("zz")); res.Found {
		t.Fatal("found absent key")
	}
	if _, err := s.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if res, _ := s.Get([]byte("a")); res.Found {
		t.Fatal("deleted key still found")
	}
}

func TestUpdateInPlace(t *testing.T) {
	s := mustOpen(t, Config{})
	defer s.Close()
	ts1, _ := s.Put([]byte("k"), []byte("v1"))
	ts2, _ := s.Put([]byte("k"), []byte("v2"))
	if ts2 <= ts1 {
		t.Fatal("timestamps not monotonic")
	}
	res, _ := s.Get([]byte("k"))
	if string(res.Value) != "v2" || res.Ts != ts2 {
		t.Fatalf("res = %+v", res)
	}
	// Update-in-place has no history.
	old, _ := s.GetAt([]byte("k"), ts1)
	if old.Found {
		t.Fatal("update-in-place store returned history")
	}
}

func TestManyInsertsSorted(t *testing.T) {
	s := mustOpen(t, Config{})
	defer s.Close()
	// Insert in reverse order to force shifting.
	for i := 2000; i > 0; i-- {
		if _, err := s.Put([]byte(fmt.Sprintf("key%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.Scan([]byte("key00000"), []byte("key99999"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2000 {
		t.Fatalf("scan = %d entries", len(out))
	}
	for i := 1; i < len(out); i++ {
		if string(out[i-1].Key) >= string(out[i].Key) {
			t.Fatal("scan out of order")
		}
	}
}

func TestCapacityLimit(t *testing.T) {
	s := mustOpen(t, Config{MaxBytes: 4096})
	defer s.Close()
	var hitCap bool
	for i := 0; i < 1000; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%05d", i)), make([]byte, 100)); err != nil {
			if !errors.Is(err, ErrCapacity) {
				t.Fatalf("unexpected error: %v", err)
			}
			hitCap = true
			break
		}
	}
	if !hitCap {
		t.Fatal("capacity limit never hit")
	}
}

func TestBulkLoadAndScan(t *testing.T) {
	s := mustOpen(t, Config{})
	defer s.Close()
	recs := ycsb.GenRecords(3000, 32)
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1499, 2999} {
		res, err := s.Get(recs[i].Key)
		if err != nil || !res.Found {
			t.Fatalf("bulk key %d: %+v err=%v", i, res, err)
		}
	}
	out, err := s.Scan(ycsb.Key(100), ycsb.Key(199))
	if err != nil || len(out) != 100 {
		t.Fatalf("scan = %d err=%v", len(out), err)
	}
	// Bulk load twice rejected; oversized rejected.
	if err := s.BulkLoad(recs); err == nil {
		t.Fatal("second bulk load accepted")
	}
	s2 := mustOpen(t, Config{MaxBytes: 1024})
	defer s2.Close()
	if err := s2.BulkLoad(recs); !errors.Is(err, ErrCapacity) {
		t.Fatalf("oversized bulk load: %v", err)
	}
}

func TestInsertAfterBulkLoad(t *testing.T) {
	s := mustOpen(t, Config{})
	defer s.Close()
	if err := s.BulkLoad(ycsb.GenRecords(500, 16)); err != nil {
		t.Fatal(err)
	}
	ts, err := s.Put([]byte("zzz-new"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if ts <= 500 {
		t.Fatalf("ts %d did not advance past bulk data", ts)
	}
	res, _ := s.Get([]byte("zzz-new"))
	if !res.Found {
		t.Fatal("inserted key missing")
	}
}

func TestPersistenceFlushes(t *testing.T) {
	s := mustOpen(t, Config{PersistEvery: 10})
	for i := 0; i < 25; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("value"))
	}
	if s.persistFile.Size() == 0 {
		t.Fatal("nothing persisted after 25 writes with interval 10")
	}
	s.Close()
}

var _ = record.MaxTs // keep record import for doc parity
