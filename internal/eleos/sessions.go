package eleos

import (
	"context"
	"errors"

	"elsm/internal/core"
	"elsm/internal/lsm"
)

// This file keeps the Eleos baseline conformant with core.KV's Sessions v2
// surface. Eleos is an in-enclave update-in-place array with no commit
// pipeline and no multi-version snapshots, so the context variants are
// plain wrappers, CommitAsync degenerates to a synchronous commit behind an
// already-resolved future, Sync flushes the persistence stream, and
// Snapshot is unsupported (the paper's baseline has no point-in-time reads
// to compare against).

// ErrNoSnapshots reports that the baseline cannot pin point-in-time views.
var ErrNoSnapshots = errors.New("eleos: snapshots are not supported by the update-in-place baseline")

// PutCtx implements core.KV.
func (s *Store) PutCtx(ctx context.Context, key, value []byte) (uint64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	return s.Put(key, value)
}

// DeleteCtx implements core.KV.
func (s *Store) DeleteCtx(ctx context.Context, key []byte) (uint64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	return s.Delete(key)
}

// ApplyBatchCtx implements core.KV.
func (s *Store) ApplyBatchCtx(ctx context.Context, ops []core.BatchOp) (uint64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	return s.ApplyBatch(ops)
}

// GetAtCtx implements core.KV.
func (s *Store) GetAtCtx(ctx context.Context, key []byte, tsq uint64) (core.Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return core.Result{}, err
		}
	}
	return s.GetAt(key, tsq)
}

// IterAtCtx implements core.KV.
func (s *Store) IterAtCtx(ctx context.Context, start, end []byte, tsq uint64) core.Iterator {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return core.NewSliceIter(nil, err)
		}
	}
	return s.IterAt(start, end, tsq)
}

// CommitAsync implements core.KV: commits synchronously and returns a
// resolved future (the baseline has no durability pipeline to decouple).
func (s *Store) CommitAsync(ctx context.Context, ops []core.BatchOp) (*core.CommitFuture, error) {
	ts, err := s.ApplyBatchCtx(ctx, ops)
	if err != nil {
		return nil, err
	}
	return lsm.NewResolvedFuture(ts, nil), nil
}

// Sync implements core.KV: flushes the buffered persistence stream.
func (s *Store) Sync(ctx context.Context) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if len(s.writeBuf) > 0 {
		buf := s.writeBuf
		s.enclave.OCall(func() {
			s.persistFile.Append(buf)
			s.persistFile.Sync()
		})
		s.writeBuf = nil
		s.dirty = 0
	}
	return nil
}

// Snapshot implements core.KV.
func (s *Store) Snapshot() (core.Snapshot, error) { return nil, ErrNoSnapshots }
