package elsm

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"elsm/internal/crypto"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

func testOptions(mode Mode) Options {
	return Options{
		Mode:          mode,
		MemtableSize:  4 << 10,
		TableFileSize: 4 << 10,
		LevelBase:     16 << 10,
		BlockSize:     512,
		CacheSize:     64 << 10,
	}
}

func TestAllModesBasicOps(t *testing.T) {
	for _, mode := range []Mode{ModeP2, ModeP1, ModeUnsecured} {
		t.Run(mode.String(), func(t *testing.T) {
			opts := testOptions(mode)
			if mode == ModeP1 {
				opts.MmapReads = false
			}
			s, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if s.Mode() != mode {
				t.Fatalf("mode = %v", s.Mode())
			}
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("key%04d", i)
				if _, err := s.Put([]byte(key), []byte(fmt.Sprintf("val%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			res, err := s.Get([]byte("key0123"))
			if err != nil || !res.Found || string(res.Value) != "val123" {
				t.Fatalf("get = %+v err=%v", res, err)
			}
			if res, _ := s.Get([]byte("missing")); res.Found {
				t.Fatal("found missing key")
			}
			out, err := s.Scan([]byte("key0100"), []byte("key0109"))
			if err != nil || len(out) != 10 {
				t.Fatalf("scan = %d err=%v", len(out), err)
			}
			if _, err := s.Delete([]byte("key0123")); err != nil {
				t.Fatal(err)
			}
			if res, _ := s.Get([]byte("key0123")); res.Found {
				t.Fatal("deleted key found")
			}
		})
	}
}

func TestHistoricalReads(t *testing.T) {
	s, err := Open(testOptions(ModeP2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts1, _ := s.Put([]byte("k"), []byte("v1"))
	ts2, _ := s.Put([]byte("k"), []byte("v2"))
	res, err := s.GetAt([]byte("k"), ts1)
	if err != nil || string(res.Value) != "v1" {
		t.Fatalf("GetAt(ts1) = %+v err=%v", res, err)
	}
	res, _ = s.GetAt([]byte("k"), ts2)
	if string(res.Value) != "v2" {
		t.Fatalf("GetAt(ts2) = %+v", res)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	fs := vfs.NewMem()
	platform, err := sgx.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	counter := sgx.NewMonotonicCounter()
	opts := testOptions(ModeP2)
	opts.FS = fs
	opts.Platform = platform
	opts.Counter = counter

	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	s.Close()

	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, err := s2.Get([]byte("key0400"))
	if err != nil || !res.Found || string(res.Value) != "v400" {
		t.Fatalf("after reopen: %+v err=%v", res, err)
	}
}

func TestAuthFailureClassification(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(ModeP2)
	opts.FS = fs
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 1500; i++ {
		s.Put([]byte(fmt.Sprintf("key%05d", i)), bytes.Repeat([]byte("v"), 50))
	}
	// Let background flush/compaction settle so the table set is stable,
	// then corrupt all sstables densely.
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List("0")
	for _, name := range names {
		f, err := fs.Open(name)
		if err != nil {
			continue // deleted by a racing compaction install
		}
		for off := int64(0); off < f.Size(); off += 31 {
			fs.Corrupt(name, off)
		}
	}
	sawAuthFailure := false
	for i := 0; i < 1500 && !sawAuthFailure; i++ {
		_, err := s.Get([]byte(fmt.Sprintf("key%05d", i)))
		if err != nil {
			if !IsAuthFailure(err) {
				// Block decode errors are acceptable too, but at least
				// one verification failure must be classified.
				continue
			}
			sawAuthFailure = true
		}
	}
	if !sawAuthFailure {
		t.Fatal("no classified auth failure after corrupting every table")
	}
}

func TestEncryptionPointMode(t *testing.T) {
	mk, err := crypto.NewMasterKey()
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(ModeP2)
	opts.FS = vfs.NewMem()
	opts.Encryption = &EncryptionOptions{Mode: EncryptPoint, Key: mk}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 300; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("secret%03d", i)), []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Get([]byte("secret123"))
	if err != nil || !res.Found || string(res.Value) != "val123" {
		t.Fatalf("encrypted get = %+v err=%v", res, err)
	}
	if string(res.Key) != "secret123" {
		t.Fatalf("plaintext key not recovered: %q", res.Key)
	}
	if res, _ := s.Get([]byte("secretXYZ")); res.Found {
		t.Fatal("found absent encrypted key")
	}
	// No plaintext on the untrusted FS.
	fs := opts.FS.(*vfs.MemFS)
	names, _ := fs.List("")
	for _, name := range names {
		f, _ := fs.Open(name)
		if bytes.Contains(f.Bytes(), []byte("secret123")) || bytes.Contains(f.Bytes(), []byte("val123")) {
			t.Fatalf("plaintext leaked into %s", name)
		}
	}
	// Scans are rejected in point mode.
	if _, err := s.Scan([]byte("a"), []byte("z")); !errors.Is(err, ErrScanUnsupported) {
		t.Fatalf("scan in point mode: %v", err)
	}
	// Deletes work over ciphertext.
	if _, err := s.Delete([]byte("secret123")); err != nil {
		t.Fatal(err)
	}
	if res, _ := s.Get([]byte("secret123")); res.Found {
		t.Fatal("deleted encrypted key found")
	}
}

func TestEncryptionRangeMode(t *testing.T) {
	opts := testOptions(ModeP2)
	opts.Encryption = &EncryptionOptions{Mode: EncryptRange}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 200; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("host%03d.example.com", i)), []byte("cert")); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.Scan([]byte("host050.example.com"), []byte("host059.example.com"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("encrypted range scan = %d results", len(out))
	}
	for i, r := range out {
		want := fmt.Sprintf("host%03d.example.com", 50+i)
		if string(r.Key) != want {
			t.Fatalf("result %d = %q want %q", i, r.Key, want)
		}
	}
	res, err := s.Get([]byte("host100.example.com"))
	if err != nil || !res.Found {
		t.Fatalf("range-mode get: %+v err=%v", res, err)
	}
}

func TestOpenRejectsBadConfig(t *testing.T) {
	if _, err := Open(Options{Mode: Mode(99)}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	opts := testOptions(ModeP1)
	opts.MmapReads = true
	if _, err := Open(opts); err == nil {
		t.Fatal("P1 with mmap accepted")
	}
}

func TestOpenValidatesTuningOptions(t *testing.T) {
	bad := []struct {
		opts    Options
		wantMsg string
	}{
		{Options{IterChunkKeys: -1}, "IterChunkKeys must be ≥ 0"},
		{Options{GroupCommitMaxOps: -1}, "GroupCommitMaxOps must be ≥ 0"},
		{Options{GroupCommitWindow: -time.Millisecond}, "GroupCommitWindow must be ≥ 0"},
		{Options{GroupCommitWindow: 2 * time.Second}, "exceeds the 1s cap"}, // over the 1s cap
		{Options{MaxAsyncCommitBacklog: -1}, "MaxAsyncCommitBacklog must be ≥ 0"},
		{Options{CompactionWorkers: -1}, "CompactionWorkers must be ≥ 0"},
	}
	for i, tc := range bad {
		_, err := Open(tc.opts)
		if err == nil {
			t.Fatalf("bad option set %d accepted: %+v", i, tc.opts)
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Fatalf("bad option set %d: error %q does not name the offending knob (want %q)", i, err, tc.wantMsg)
		}
	}
	// And valid settings work end to end: tiny chunks, bounded groups, a
	// small batching window.
	for _, mode := range []Mode{ModeP2, ModeP1, ModeUnsecured} {
		opts := testOptions(mode)
		opts.IterChunkKeys = 4
		opts.GroupCommitMaxOps = 8
		opts.GroupCommitWindow = 100 * time.Microsecond
		s, err := Open(opts)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for i := 0; i < 20; i++ {
			if _, err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		out, err := s.Scan([]byte("k"), []byte("l"))
		if err != nil || len(out) != 20 {
			t.Fatalf("%v: scan with tuned chunks = %d results, err %v", mode, len(out), err)
		}
		s.Close()
	}
}

func TestDirBackedStore(t *testing.T) {
	opts := testOptions(ModeP2)
	opts.Dir = t.TempDir()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Put([]byte("disk"), []byte("backed")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Get([]byte("disk"))
	if err != nil || !res.Found || string(res.Value) != "backed" {
		t.Fatalf("os-dir store get: %+v err=%v", res, err)
	}
}
