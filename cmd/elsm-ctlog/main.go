// Command elsm-ctlog runs the paper's case study (§5.7): a Certificate
// Transparency log server backed by an authenticated eLSM store, serving a
// minimal HTTP-free TCP protocol:
//
//	ADD <hostname> <serial> <issuer>\n  -> OK <ts>\n
//	AUDIT <hostname> <serial> <issuer>\n-> OK\n | ERR <reason>\n
//	REVOKE <hostname>\n                 -> OK <ts>\n
//	MONITOR <domain-prefix>\n           -> N <count>\n then rows
//
// Usage: elsm-ctlog [-addr :7879] [-dir /path]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"time"

	"elsm"
	"elsm/internal/ctlog"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:7879", "listen address")
		dir  = flag.String("dir", "", "data directory (empty: in-memory)")
	)
	flag.Parse()

	store, err := elsm.Open(elsm.Options{Dir: *dir})
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	defer store.Close()
	srv := ctlog.NewServer(store)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("elsm-ctlog listening on %s (authenticated eLSM-P2 backing store)", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		go serve(conn, srv)
	}
}

func mkCert(host, serialStr, issuer string) (ctlog.Certificate, error) {
	serial, err := strconv.ParseUint(serialStr, 10, 64)
	if err != nil {
		return ctlog.Certificate{}, fmt.Errorf("bad serial %q", serialStr)
	}
	return ctlog.Certificate{
		Hostname: host,
		Serial:   serial,
		Issuer:   issuer,
		NotAfter: time.Now().AddDate(1, 0, 0),
		DER:      []byte(host + "|" + serialStr + "|" + issuer),
	}, nil
}

func serve(conn net.Conn, srv *ctlog.Server) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "ADD":
			if len(fields) != 4 {
				fmt.Fprintln(w, "ERR usage: ADD <hostname> <serial> <issuer>")
				break
			}
			cert, err := mkCert(fields[1], fields[2], fields[3])
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			ts, err := srv.AddChain(cert)
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			fmt.Fprintf(w, "OK %d\n", ts)
		case "AUDIT":
			if len(fields) != 4 {
				fmt.Fprintln(w, "ERR usage: AUDIT <hostname> <serial> <issuer>")
				break
			}
			cert, err := mkCert(fields[1], fields[2], fields[3])
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			if err := srv.Audit(cert); err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			fmt.Fprintln(w, "OK")
		case "REVOKE":
			if len(fields) != 2 {
				fmt.Fprintln(w, "ERR usage: REVOKE <hostname>")
				break
			}
			ts, err := srv.Revoke(fields[1])
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			fmt.Fprintf(w, "OK %d\n", ts)
		case "MONITOR":
			if len(fields) != 2 {
				fmt.Fprintln(w, "ERR usage: MONITOR <domain-prefix>")
				break
			}
			rep, err := srv.MonitorDomain(fields[1])
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			fmt.Fprintf(w, "N %d\n", len(rep.Entries))
			for host, e := range rep.Entries {
				fmt.Fprintf(w, "%s serial=%d issuer=%s revoked=%v\n", host, e.Serial, e.Issuer, e.Revoked)
			}
		case "QUIT":
			return
		default:
			fmt.Fprintf(w, "ERR unknown command\n")
		}
		w.Flush()
	}
}
