package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"elsm"
	"elsm/internal/ctlog"
)

func ctDialogue(t *testing.T, srv *ctlog.Server, lines []string) []string {
	t.Helper()
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		serve(server, srv)
		close(done)
	}()
	w := bufio.NewWriter(client)
	r := bufio.NewReader(client)
	var replies []string
	for _, line := range lines {
		fmt.Fprintln(w, line)
		w.Flush()
		if strings.HasPrefix(strings.ToUpper(line), "QUIT") {
			break
		}
		reply, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reply to %q: %v", line, err)
		}
		replies = append(replies, strings.TrimSpace(reply))
		if strings.HasPrefix(reply, "N ") {
			var n int
			fmt.Sscanf(reply, "N %d", &n)
			for i := 0; i < n; i++ {
				row, err := r.ReadString('\n')
				if err != nil {
					t.Fatalf("monitor row: %v", err)
				}
				replies = append(replies, strings.TrimSpace(row))
			}
		}
	}
	client.Close()
	<-done
	return replies
}

func TestCTLogProtocol(t *testing.T) {
	store, err := elsm.Open(elsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := ctlog.NewServer(store)

	replies := ctDialogue(t, srv, []string{
		"ADD www.example.com 100 TestCA",
		"AUDIT www.example.com 100 TestCA",
		"AUDIT www.example.com 999 TestCA", // wrong serial -> mismatch
		"REVOKE www.example.com",
		"AUDIT www.example.com 100 TestCA", // revoked
		"ADD api.example.com 101 TestCA",
		"MONITOR example", // no entries: hostnames start with 'www'/'api'
		"MONITOR www",
		"BOGUS",
		"QUIT",
	})
	checks := []struct {
		idx    int
		prefix string
	}{
		{0, "OK "},
		{1, "OK"},
		{2, "ERR "},
		{3, "OK "},
		{4, "ERR "},
		{5, "OK "},
		{6, "N 0"},
		{7, "N 1"},
		{8, "www.example.com"},
		{9, "ERR "},
	}
	if len(replies) != len(checks) {
		t.Fatalf("%d replies: %v", len(replies), replies)
	}
	for _, c := range checks {
		if !strings.HasPrefix(replies[c.idx], c.prefix) {
			t.Fatalf("reply %d = %q, want prefix %q", c.idx, replies[c.idx], c.prefix)
		}
	}
	if !strings.Contains(replies[8], "revoked=true") {
		t.Fatalf("monitor row %q should show revocation", replies[8])
	}
}
