// Command elsm-bench regenerates every table and figure of the paper's
// evaluation (Figures 2, 5a–5c, 6a–6c, 7a, 7b, 8 and Table 1).
//
// Usage:
//
//	elsm-bench -exp all                 # every figure at default scale (1/32)
//	elsm-bench -exp fig5a,fig6a -v      # selected figures with progress
//	elsm-bench -exp fig2 -scale 64      # smaller/faster sweep
//	elsm-bench -exp table1              # the qualitative design matrix
//
// Sizes are the paper's divided by -scale, with the simulated EPC scaled
// identically, so every crossover of the paper's figures is preserved.
// -scale 1 reproduces paper-absolute sizes (needs tens of GB of RAM and
// hours of runtime).
//
// Latency quantiles in every table come from the store's shared
// log-bucket histograms (internal/obs) — the same estimator the server's
// /metrics endpoint exposes — so bench rows compare directly against
// production scrapes, including the instrumentation-overhead A/B guard
// in the repo's bench tests.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"elsm/internal/bench"
	"elsm/internal/costmodel"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiments: table1,fig2,fig5a,fig5b,fig5c,fig6a,fig6b,fig6c,fig7a,fig7b,fig8,ablation-earlystop,ablation-batch,ablation-commit,ablation-compaction,ablation-async,ablation-shards,ablation-repl,ablation-net or 'all'")
		scale    = flag.Int("scale", 32, "divide the paper's byte sizes by this factor (EPC scales too)")
		ops      = flag.Int("ops", 1200, "measured operations per data point")
		costName = flag.String("cost", "calibrated", "SGX cost model: calibrated | zero")
		batch    = flag.Int("batch", 0, "report batched-put throughput at this batch size next to single-put (0: off)")
		procs    = flag.Int("procs", 0, "report concurrent-client write throughput (per-op vs group commit) up to this many goroutines (0: off)")
		jsonDir  = flag.String("json", "", "also write each result as machine-readable BENCH_<name>.json into this directory (empty: off)")
		verbose  = flag.Bool("v", false, "print per-point progress")
		listFlag = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *listFlag {
		fmt.Println("table1")
		for _, e := range bench.All() {
			fmt.Println(e.Name)
		}
		return
	}

	var cost costmodel.Model
	switch *costName {
	case "calibrated":
		cost = costmodel.Calibrated()
	case "zero":
		cost = costmodel.Zero
	default:
		fmt.Fprintf(os.Stderr, "unknown cost model %q\n", *costName)
		os.Exit(2)
	}
	cfg := bench.Config{Scale: *scale, Ops: *ops, Cost: &cost, Verbose: *verbose}

	selected := map[string]bool{}
	runAll := false
	for _, name := range strings.Split(*expFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "all" {
			runAll = true
			continue
		}
		if name != "" {
			selected[name] = true
		}
	}

	fmt.Printf("# eLSM paper reproduction — scale 1/%d, %d ops/point, cost=%s\n\n", *scale, *ops, *costName)
	if runAll || selected["table1"] {
		fmt.Println(bench.Table1())
	}
	exitCode := 0
	emit := func(tbl bench.Table) {
		fmt.Println(tbl.Format())
		if *jsonDir != "" {
			path, err := tbl.WriteJSON(*jsonDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				exitCode = 1
				return
			}
			fmt.Printf("(wrote %s)\n\n", path)
		}
	}
	if *batch > 0 {
		tbl, err := bench.BatchThroughput(cfg, *batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batch report failed: %v\n", err)
			exitCode = 1
		} else {
			emit(tbl)
		}
	}
	if *procs > 0 {
		tbl, err := bench.CommitThroughput(cfg, *procs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "procs report failed: %v\n", err)
			exitCode = 1
		} else {
			emit(tbl)
		}
	}
	for _, exp := range bench.All() {
		if !runAll && !selected[exp.Name] {
			continue
		}
		start := time.Now()
		tbl, err := exp.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", exp.Name, err)
			exitCode = 1
			continue
		}
		emit(tbl)
		fmt.Printf("(%s completed in %v)\n\n", exp.Name, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exitCode)
}
