package main

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"elsm"
	"elsm/internal/repl"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// dialogue runs one client session against serve() over an in-memory pipe.
// Lines tagged with a leading ">" are sent without reading a reply (the
// multi-line BATCH command, whose single reply follows the last op line —
// request it with the pseudo-line "<"); SCAN replies are read until their
// END/ERR terminator. net.Pipe is unbuffered, so a send that expected no
// reply but drew one would deadlock rather than pass silently.
func dialogue(t *testing.T, store *elsm.Store, lines []string) []string {
	t.Helper()
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		serve(server, store)
		close(done)
	}()
	w := bufio.NewWriter(client)
	r := bufio.NewReader(client)
	var replies []string
	readReply := func(context string) {
		for {
			reply, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("read reply to %q: %v", context, err)
			}
			reply = strings.TrimSpace(reply)
			replies = append(replies, reply)
			// SCAN streams ROW lines (and STATS streams STAT lines) until
			// END or ERR.
			if strings.HasPrefix(reply, "ROW ") || strings.HasPrefix(reply, "STAT ") {
				continue
			}
			return
		}
	}
	for _, line := range lines {
		if line == "<" {
			readReply("<deferred>")
			continue
		}
		if rest, ok := strings.CutPrefix(line, ">"); ok {
			fmt.Fprintln(w, rest)
			w.Flush()
			continue
		}
		fmt.Fprintln(w, line)
		w.Flush()
		if strings.HasPrefix(strings.ToUpper(line), "QUIT") {
			break
		}
		readReply(line)
	}
	client.Close()
	<-done
	return replies
}

func mustOpen(t *testing.T) *elsm.Store {
	t.Helper()
	store, err := elsm.Open(elsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

func TestServerProtocol(t *testing.T) {
	replies := dialogue(t, mustOpen(t), []string{
		"PUT alpha one",
		"PUT beta two",
		"GET alpha",
		"GET missing",
		"SCAN a z",
		"DEL alpha",
		"GET alpha",
		"BOGUS",
		"QUIT",
	})
	want := []struct {
		idx    int
		prefix string
	}{
		{0, "OK "},
		{1, "OK "},
		{2, "VALUE "},
		{3, "NOTFOUND"},
		{4, "ROW alpha one"},
		{5, "ROW beta two"},
		{6, "END 2"},
		{7, "OK "},
		{8, "NOTFOUND"},
		{9, "ERR "},
	}
	if len(replies) != len(want) {
		t.Fatalf("replies = %d: %v", len(replies), replies)
	}
	for _, w := range want {
		if !strings.HasPrefix(replies[w.idx], w.prefix) {
			t.Fatalf("reply %d = %q, want prefix %q", w.idx, replies[w.idx], w.prefix)
		}
	}
	if !strings.Contains(replies[2], "one") {
		t.Fatalf("GET reply %q missing value", replies[2])
	}
}

// TestServerStats checks the STATS command: STAT lines for the engine and
// background-maintenance counters, terminated by END.
// TestServerSnapshotVerbs drives the SNAPSHOT/SGET/SSCAN/RELEASE session
// verbs: a pinned snapshot keeps answering with its capture-time state
// while the live store moves on, and releasing an unknown id errors.
func TestServerSnapshotVerbs(t *testing.T) {
	store := mustOpen(t)
	replies := dialogue(t, store, []string{
		"PUT alice v1",
		"PUT bob v1",
		"SNAPSHOT",
		"PUT alice v2",
		"DEL bob",
		"SGET 1 alice",
		"SGET 1 bob",
		"GET alice",
		"GET bob",
		"SSCAN 1 a z",
		"RELEASE 1",
		"SGET 1 alice",
		"RELEASE 7",
	})
	if !strings.HasPrefix(replies[2], "OK 1 ") {
		t.Fatalf("SNAPSHOT reply = %q, want OK 1 <ts>", replies[2])
	}
	if replies[5] != "VALUE 1 v1" {
		t.Fatalf("snapshot get alice = %q, want the pre-churn VALUE 1 v1", replies[5])
	}
	if replies[6] != "VALUE 2 v1" {
		t.Fatalf("snapshot get bob = %q, want VALUE 2 v1 (deletion must not leak in)", replies[6])
	}
	if replies[7] != "VALUE 3 v2" {
		t.Fatalf("live get alice = %q, want VALUE 3 v2", replies[7])
	}
	if replies[8] != "NOTFOUND" {
		t.Fatalf("live get bob = %q, want NOTFOUND", replies[8])
	}
	scan := replies[9 : len(replies)-3]
	if len(scan) != 3 || scan[0] != "ROW alice v1" || scan[1] != "ROW bob v1" || scan[2] != "END 2" {
		t.Fatalf("snapshot scan = %q, want both capture-time rows", scan)
	}
	if replies[len(replies)-3] != "OK" {
		t.Fatalf("RELEASE = %q, want OK", replies[len(replies)-3])
	}
	if !strings.HasPrefix(replies[len(replies)-2], "ERR") {
		t.Fatalf("SGET on released snapshot = %q, want ERR", replies[len(replies)-2])
	}
	if !strings.HasPrefix(replies[len(replies)-1], "ERR") {
		t.Fatalf("RELEASE of unknown id = %q, want ERR", replies[len(replies)-1])
	}
	if st := store.Stats(); st.SnapshotsOpen != 0 {
		t.Fatalf("SnapshotsOpen = %d after RELEASE, want 0", st.SnapshotsOpen)
	}
}

// TestServerAsyncVerbs drives PUTASYNC/SYNC: acknowledgments carry
// monotonic timestamps, SYNC settles them all, and the writes are durable
// and visible afterwards.
func TestServerAsyncVerbs(t *testing.T) {
	store := mustOpen(t)
	replies := dialogue(t, store, []string{
		"PUTASYNC k1 v1",
		"PUTASYNC k2 v2",
		"PUTASYNC k3 v3",
		"SYNC",
		"GET k2",
		"SYNC",
	})
	var last uint64
	for i := 0; i < 3; i++ {
		var ts uint64
		if _, err := fmt.Sscanf(replies[i], "ACK %d", &ts); err != nil || ts <= last {
			t.Fatalf("PUTASYNC reply %d = %q, want ACK with a fresh timestamp", i, replies[i])
		}
		last = ts
	}
	if replies[3] != "OK 3" {
		t.Fatalf("SYNC = %q, want OK 3 (three settled futures)", replies[3])
	}
	if replies[4] != fmt.Sprintf("VALUE %d v2", last-1) {
		t.Fatalf("get after SYNC = %q, want the async write", replies[4])
	}
	if replies[5] != "OK 0" {
		t.Fatalf("idle SYNC = %q, want OK 0", replies[5])
	}
}

// TestServerSnapshotsReleasedOnDisconnect checks the per-connection cleanup
// path: a client that drops with snapshots open must not leak pins.
func TestServerSnapshotsReleasedOnDisconnect(t *testing.T) {
	store := mustOpen(t)
	dialogue(t, store, []string{
		"PUT k v",
		"SNAPSHOT",
		"SNAPSHOT",
		"QUIT",
	})
	if st := store.Stats(); st.SnapshotsOpen != 0 {
		t.Fatalf("SnapshotsOpen = %d after disconnect, want 0", st.SnapshotsOpen)
	}
}

func TestServerStats(t *testing.T) {
	replies := dialogue(t, mustOpen(t), []string{
		"PUT alpha one",
		"STATS",
		"QUIT",
	})
	if len(replies) < 2 || replies[0] != "OK 1" {
		t.Fatalf("unexpected replies: %v", replies)
	}
	statLines := replies[1 : len(replies)-1]
	if replies[len(replies)-1] != "END" {
		t.Fatalf("STATS not END-terminated: %v", replies[len(replies)-1])
	}
	seen := map[string]bool{}
	for _, line := range statLines {
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "STAT" {
			t.Fatalf("malformed STAT line %q", line)
		}
		seen[fields[1]] = true
	}
	for _, name := range []string{
		"shards", "flushes", "compactions", "background_compactions",
		"flush_stall_nanos", "compaction_stall_nanos", "pinned_runs",
		"group_commit_window_nanos", "wal_syncs", "verified_gets",
		"shard0_wal_syncs", "shard0_snapshots_open", "shard0_async_commits_in_flight",
	} {
		if !seen[name] {
			t.Fatalf("STATS missing %q (got %v)", name, seen)
		}
	}
}

// TestServerShardedStore drives the wire protocol against a 4-shard store:
// cross-shard MPUT batches, merged verified SCAN, snapshot verbs over the
// router snapshot, and the per-shard STATS gauges that make the topology
// observable.
func TestServerShardedStore(t *testing.T) {
	store, err := elsm.Open(elsm.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })

	lines := []string{
		"MPUT alpha 1 bravo 2 charlie 3 delta 4 echo 5 foxtrot 6",
		"GET charlie",
		"SNAPSHOT",
		"PUT alpha overwritten",
		"SGET 1 alpha",
		"SSCAN 1 a z",
		"SCAN a z",
		"RELEASE 1",
		"STATS",
		"QUIT",
	}
	replies := dialogue(t, store, lines)
	if !strings.HasPrefix(replies[0], "OK ") {
		t.Fatalf("cross-shard MPUT: %q", replies[0])
	}
	if !strings.HasPrefix(replies[1], "VALUE ") || !strings.HasSuffix(replies[1], " 3") {
		t.Fatalf("GET after cross-shard batch: %q", replies[1])
	}
	// The snapshot predates the overwrite: SGET must serve the old value.
	var sgetRow string
	for _, r := range replies {
		if strings.HasPrefix(r, "VALUE ") && strings.HasSuffix(r, " 1") {
			sgetRow = r
		}
	}
	if sgetRow == "" {
		t.Fatalf("snapshot read did not serve the pre-overwrite value: %v", replies)
	}
	// Both the snapshot scan and the live merged scan return all six keys,
	// END-terminated, with ROW lines in key order.
	ends, rows := 0, []string{}
	for _, r := range replies {
		if r == "END 6" {
			ends++
		}
		if strings.HasPrefix(r, "ROW ") {
			rows = append(rows, strings.Fields(r)[1])
		}
	}
	if ends != 2 || len(rows) != 12 {
		t.Fatalf("merged scans: %d END 6 lines, %d rows (want 2 and 12): %v", ends, len(rows), replies)
	}
	for i := 1; i < 6; i++ {
		if rows[i-1] >= rows[i] || rows[6+i-1] >= rows[6+i] {
			t.Fatalf("merged scan rows out of key order: %v", rows)
		}
	}
	shardStats := 0
	for _, r := range replies {
		if strings.HasPrefix(r, "STAT shard3_") {
			shardStats++
		}
	}
	if shardStats == 0 {
		t.Fatalf("per-shard STATS gauges missing for shard 3: %v", replies)
	}
}

func TestServerBinarySafety(t *testing.T) {
	replies := dialogue(t, mustOpen(t), []string{
		`PUT key "a value with spaces"`,
		"GET key",
		`PUT "key with spaces" plain`,
		`GET "key with spaces"`,
		`PUT bin "line1\nline2\x00"`,
		"GET bin",
		`SCAN " " "~~~~"`,
		"QUIT",
	})
	if want := `VALUE 1 "a value with spaces"`; replies[1] != want {
		t.Fatalf("GET = %q, want %q", replies[1], want)
	}
	if replies[3] != "VALUE 2 plain" {
		t.Fatalf("GET quoted key = %q", replies[3])
	}
	if want := `VALUE 3 "line1\nline2\x00"`; replies[5] != want {
		t.Fatalf("GET binary = %q, want %q", replies[5], want)
	}
	// The scan must frame all three records unambiguously in 3 rows + END.
	var rows, end int
	for _, r := range replies[6:] {
		switch {
		case strings.HasPrefix(r, "ROW "):
			rows++
		case strings.HasPrefix(r, "END "):
			end++
		}
	}
	if rows != 3 || end != 1 {
		t.Fatalf("scan framing: %d rows, %d END in %v", rows, end, replies[6:])
	}
}

func TestServerRejectsMalformed(t *testing.T) {
	replies := dialogue(t, mustOpen(t), []string{
		`PUT key "unterminated`,
		`PUT ke"y v`,
		"PUT onlykey",
		"MPUT k1 v1 k2", // odd arity
		"GET key",
		"QUIT",
	})
	for i := 0; i < 4; i++ {
		if !strings.HasPrefix(replies[i], "ERR ") {
			t.Fatalf("reply %d = %q, want ERR", i, replies[i])
		}
	}
	if replies[4] != "NOTFOUND" {
		t.Fatalf("malformed PUTs must not write; GET = %q", replies[4])
	}
}

func TestServerBadBatchSizeClosesConnection(t *testing.T) {
	// A bad size declaration is a framing-level protocol error: the server
	// cannot resynchronize, so it must ERR and drop the session rather
	// than execute later pipelined lines out of context.
	for _, size := range []string{"notanumber", "99999999", "-1"} {
		replies := dialogue(t, mustOpen(t), []string{"BATCH " + size})
		if len(replies) != 1 || !strings.HasPrefix(replies[0], "ERR ") {
			t.Fatalf("BATCH %s replies = %v, want one ERR", size, replies)
		}
	}
}

func TestServerBatchCommands(t *testing.T) {
	store := mustOpen(t)
	replies := dialogue(t, store, []string{
		"MPUT a 1 b 2 c 3",
		"GET b",
		">BATCH 3",
		">PUT d 4",
		">DEL a",
		">PUT e 5",
		"<",
		"SCAN a z",
		"QUIT",
	})
	if !strings.HasPrefix(replies[0], "OK ") {
		t.Fatalf("MPUT = %q", replies[0])
	}
	if replies[1] != "VALUE 2 2" {
		t.Fatalf("GET after MPUT = %q", replies[1])
	}
	if !strings.HasPrefix(replies[2], "OK ") {
		t.Fatalf("BATCH = %q", replies[2])
	}
	wantRows := []string{"ROW b 2", "ROW c 3", "ROW d 4", "ROW e 5", "END 4"}
	got := replies[3:]
	if len(got) != len(wantRows) {
		t.Fatalf("scan = %v, want %v", got, wantRows)
	}
	for i, w := range wantRows {
		if got[i] != w {
			t.Fatalf("scan row %d = %q, want %q", i, got[i], w)
		}
	}
}

// TestServerConnectionsShareCommitGroups proves the server-side write
// coalescing: MPUT and BATCH requests arriving on SEPARATE connections ride
// the store's shared group-commit pipeline, so the store issues measurably
// fewer WAL fsyncs than it served write requests. The store sits on
// sync-delayed storage (where grouping matters) with a small batching
// window so concurrent requests reliably land in shared groups.
func TestServerConnectionsShareCommitGroups(t *testing.T) {
	fs := vfs.NewSlowSync(vfs.NewMem(), 500*time.Microsecond)
	store, err := elsm.Open(elsm.Options{
		FS:                fs,
		GroupCommitWindow: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const conns = 8
	const requestsPerConn = 10
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, server := net.Pipe()
			done := make(chan struct{})
			go func() {
				serve(server, store)
				close(done)
			}()
			defer func() {
				client.Close()
				<-done
			}()
			w := bufio.NewWriter(client)
			r := bufio.NewReader(client)
			for i := 0; i < requestsPerConn; i++ {
				// Alternate MPUT and BATCH, the two grouped write forms.
				if i%2 == 0 {
					fmt.Fprintf(w, "MPUT c%02d-a%02d 1 c%02d-b%02d 2\n", c, i, c, i)
				} else {
					fmt.Fprintf(w, "BATCH 2\nPUT c%02d-a%02d 3\nDEL c%02d-b%02d\n", c, i, c, i)
				}
				w.Flush()
				reply, err := r.ReadString('\n')
				if err != nil {
					errs <- fmt.Errorf("conn %d req %d: %v", c, i, err)
					return
				}
				if !strings.HasPrefix(reply, "OK ") {
					errs <- fmt.Errorf("conn %d req %d: reply %q", c, i, reply)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := store.Stats()
	total := uint64(conns * requestsPerConn)
	if st.GroupedRecords != total*2 {
		t.Fatalf("pipeline carried %d records, want %d", st.GroupedRecords, total*2)
	}
	if st.WALSyncs >= total {
		t.Fatalf("server issued %d fsyncs for %d write requests — connections are not sharing commit groups", st.WALSyncs, total)
	}
	t.Logf("%d write requests from %d connections → %d fsyncs, %d commit groups",
		total, conns, st.WALSyncs, st.GroupCommits)

	// And the coalesced writes are all there, verified.
	for c := 0; c < conns; c++ {
		res, err := store.Get([]byte(fmt.Sprintf("c%02d-a%02d", c, requestsPerConn-2)))
		if err != nil || !res.Found {
			t.Fatalf("conn %d data lost after coalesced commit: %v found=%v", c, err, res.Found)
		}
	}
}

func TestServerBatchAborted(t *testing.T) {
	store := mustOpen(t)
	replies := dialogue(t, store, []string{
		">BATCH 2",
		">PUT x 1",
		">NOPE y",
		"<",
		"GET x",
		"QUIT",
	})
	if !strings.HasPrefix(replies[0], "ERR ") {
		t.Fatalf("bad batch op = %q, want ERR", replies[0])
	}
	if replies[1] != "NOTFOUND" {
		t.Fatalf("aborted batch must apply nothing; GET x = %q", replies[1])
	}
}

func TestServerBatchAbortDrainsPipelinedOps(t *testing.T) {
	// A pipelining client sends the whole batch before reading. When an
	// early op aborts the batch, the remaining declared op lines must be
	// consumed — NOT executed as top-level commands — and the reply stream
	// must stay in sync for the next real command.
	store := mustOpen(t)
	replies := dialogue(t, store, []string{
		">BATCH 3",
		">NOPE first",
		">PUT y 2",
		">PUT z 3",
		"<",
		"GET y",
		"GET z",
		"QUIT",
	})
	if !strings.HasPrefix(replies[0], "ERR ") {
		t.Fatalf("bad batch op = %q, want ERR", replies[0])
	}
	if replies[1] != "NOTFOUND" || replies[2] != "NOTFOUND" {
		t.Fatalf("drained batch ops leaked as commands: %v", replies[1:])
	}
}

// pipeDialer turns serve() into a dialable endpoint: every Dial spawns a
// fresh serve goroutine on one end of a net.Pipe, exactly as one TCP accept
// would.
func pipeDialer(store *elsm.Store) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		client, server := net.Pipe()
		go serve(server, store)
		return client, nil
	}
}

// TestServerReplProtocol drives the REPL endpoint end to end over the wire:
// a follower bootstraps from REPL CKPT, tails REPL TAIL, converges with the
// leader, and both sides expose the replication gauges on STATS.
func TestServerReplProtocol(t *testing.T) {
	secret := []byte("server-repl-secret")
	leader, err := elsm.Open(elsm.Options{Platform: sgx.NewPlatformFromSecret(secret)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })
	for i := 0; i < 50; i++ {
		if _, err := leader.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	// Leader hubs exist before a follower dials in (the server does this
	// lazily on the first REPL command; either order works).
	if _, err := leader.ReplicationSource(); err != nil {
		t.Fatal(err)
	}

	netSrc := repl.NewNetSource("pipe")
	netSrc.Dial = pipeDialer(leader)
	follower, err := elsm.OpenFollower(elsm.Options{Platform: sgx.NewPlatformFromSecret(secret)}, netSrc)
	if err != nil {
		t.Fatalf("open follower over wire: %v", err)
	}
	t.Cleanup(func() { follower.Close() })

	for i := 0; i < 50; i++ {
		if _, err := leader.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := follower.ReplicationErr(); err != nil {
			t.Fatalf("replication failed: %v", err)
		}
		res, err := follower.Get([]byte("k049"))
		if err != nil {
			t.Fatal(err)
		}
		if res.Found && string(res.Value) == "v2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never converged over the wire protocol")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// STATS on the follower exposes the lag gauges; on the leader, the
	// connected-follower count.
	replies := dialogue(t, follower, []string{"STATS", "QUIT"})
	stats := statMap(t, replies)
	for _, name := range []string{"repl_lag_groups", "repl_lag_bytes", "followers_connected"} {
		if _, ok := stats[name]; !ok {
			t.Fatalf("follower STATS missing %q", name)
		}
	}
	replies = dialogue(t, leader, []string{"STATS", "QUIT"})
	if got := statMap(t, replies)["followers_connected"]; got < 1 {
		t.Fatalf("leader followers_connected = %d, want >= 1", got)
	}

	// A write against the follower draws ERR, and REPL rejects bad forms
	// on the status line.
	replies = dialogue(t, follower, []string{"PUT x y", "QUIT"})
	if !strings.HasPrefix(replies[0], "ERR") || !strings.Contains(replies[0], "replica") {
		t.Fatalf("follower PUT reply %q, want ERR ...replica...", replies[0])
	}
	replies = dialogue(t, leader, []string{"REPL CKPT 9", "QUIT"})
	if !strings.HasPrefix(replies[0], "ERR") {
		t.Fatalf("REPL bad shard reply %q, want ERR", replies[0])
	}

	// A tail cursor older than the retained ring draws the exact BEHIND
	// token (the hubs were anchored after the first 50 writes, so fromTs 0
	// is out of the ring) — followers match it verbatim to re-bootstrap.
	replies = dialogue(t, leader, []string{"REPL TAIL 0 0", "QUIT"})
	if replies[0] != repl.StatusBehind {
		t.Fatalf("REPL TAIL behind reply %q, want %q", replies[0], repl.StatusBehind)
	}
}

// statMap parses STAT lines from a dialogue reply slice.
func statMap(t *testing.T, replies []string) map[string]uint64 {
	t.Helper()
	out := map[string]uint64{}
	for _, line := range replies {
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "STAT" {
			v, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				t.Fatalf("bad STAT value in %q", line)
			}
			out[fields[1]] = v
		}
	}
	return out
}

// TestNetConfigFlagValidation covers the admission-control flag parsing:
// the flags default to the concrete netsrv values, so zero and negative
// settings are operator mistakes and draw descriptive errors before the
// listener starts.
func TestNetConfigFlagValidation(t *testing.T) {
	cfg, err := netConfig(1024, 64, 4096)
	if err != nil {
		t.Fatalf("default flag values rejected: %v", err)
	}
	if cfg.MaxConnections != 1024 || cfg.PipelineDepth != 64 || cfg.MaxInflight != 4096 {
		t.Fatalf("config mangled: %+v", cfg)
	}
	cases := []struct {
		maxConns, depth, inflight int
		want                      string
	}{
		{0, 64, 4096, "-max-connections must be > 0, got 0"},
		{-5, 64, 4096, "-max-connections must be > 0, got -5"},
		{1024, 0, 4096, "-pipeline-depth must be > 0, got 0"},
		{1024, -1, 4096, "-pipeline-depth must be > 0, got -1"},
		{1024, 64, 0, "-max-inflight must be > 0, got 0"},
		{1024, 64, -9, "-max-inflight must be > 0, got -9"},
	}
	for _, c := range cases {
		_, err := netConfig(c.maxConns, c.depth, c.inflight)
		if err == nil || err.Error() != c.want {
			t.Fatalf("netConfig(%d, %d, %d) err = %v, want %q",
				c.maxConns, c.depth, c.inflight, err, c.want)
		}
	}
}
