package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"elsm"
)

// dialogue runs one client session against serve() over an in-memory pipe.
func dialogue(t *testing.T, store *elsm.Store, lines []string) []string {
	t.Helper()
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		serve(server, store)
		close(done)
	}()
	w := bufio.NewWriter(client)
	r := bufio.NewReader(client)
	var replies []string
	for _, line := range lines {
		fmt.Fprintln(w, line)
		w.Flush()
		if strings.HasPrefix(strings.ToUpper(line), "QUIT") {
			break
		}
		reply, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read reply to %q: %v", line, err)
		}
		replies = append(replies, strings.TrimSpace(reply))
		// SCAN responses carry extra rows.
		if strings.HasPrefix(reply, "N ") {
			var n int
			fmt.Sscanf(reply, "N %d", &n)
			for i := 0; i < n; i++ {
				row, err := r.ReadString('\n')
				if err != nil {
					t.Fatalf("read scan row: %v", err)
				}
				replies = append(replies, strings.TrimSpace(row))
			}
		}
	}
	client.Close()
	<-done
	return replies
}

func TestServerProtocol(t *testing.T) {
	store, err := elsm.Open(elsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	replies := dialogue(t, store, []string{
		"PUT alpha one",
		"PUT beta two",
		"GET alpha",
		"GET missing",
		"SCAN a z",
		"DEL alpha",
		"GET alpha",
		"BOGUS",
		"QUIT",
	})
	want := []struct {
		idx    int
		prefix string
	}{
		{0, "OK "},
		{1, "OK "},
		{2, "VALUE "},
		{3, "NOTFOUND"},
		{4, "N 2"},
		{5, "alpha one"},
		{6, "beta two"},
		{7, "OK "},
		{8, "NOTFOUND"},
		{9, "ERR "},
	}
	if len(replies) != len(want) {
		t.Fatalf("replies = %d: %v", len(replies), replies)
	}
	for _, w := range want {
		if !strings.HasPrefix(replies[w.idx], w.prefix) {
			t.Fatalf("reply %d = %q, want prefix %q", w.idx, replies[w.idx], w.prefix)
		}
	}
	if !strings.Contains(replies[2], "one") {
		t.Fatalf("GET reply %q missing value", replies[2])
	}
}

func TestServerValueWithSpaces(t *testing.T) {
	store, err := elsm.Open(elsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	replies := dialogue(t, store, []string{
		"PUT key a value with spaces",
		"GET key",
		"QUIT",
	})
	if !strings.HasSuffix(replies[1], "a value with spaces") {
		t.Fatalf("GET = %q", replies[1])
	}
}
