// Command elsm-server exposes an authenticated eLSM store over a minimal
// line-oriented TCP protocol (stdlib net only), modelling the paper's
// trusted cloud application serving verified reads to clients:
//
//	PUT <key> <value>\n            -> OK <ts>\n
//	GET <key>\n                    -> VALUE <ts> <value>\n | NOTFOUND\n
//	DEL <key>\n                    -> OK <ts>\n
//	MPUT <k> <v> [<k> <v> ...]\n   -> OK <ts>\n            (atomic batch)
//	BATCH <n>\n                    followed by n op lines, each
//	  PUT <key> <value>\n | DEL <key>\n,
//	                               -> OK <ts>\n            (atomic batch)
//	  A bad op aborts the batch with ERR, applies NOTHING, and consumes
//	  the remaining declared op lines (pipelined clients stay in sync).
//	  A bad <n> is a protocol error: ERR, then the connection closes.
//	SCAN <start> <end>\n           -> ROW <key> <value>\n rows streamed as
//	                                  they verify, then END <count>\n
//	SNAPSHOT\n                     -> OK <id> <ts>\n — pins a verified
//	                                  point-in-time session (per connection)
//	SGET <id> <key>\n              -> VALUE/NOTFOUND as GET, but against
//	                                  the snapshot's pinned state
//	SSCAN <id> <start> <end>\n     -> ROW.../END as SCAN, against the
//	                                  snapshot (repeatable bit for bit)
//	RELEASE <id>\n                 -> OK\n — releases the snapshot's pins
//	PUTASYNC <key> <value>\n       -> ACK <ts>\n once the write's trusted
//	                                  timestamp is assigned and its group
//	                                  appended (NOT yet fsynced); durability
//	                                  outcomes surface on SYNC
//	SYNC\n                         -> OK <n>\n after every commit this
//	                                  connection acknowledged is durable
//	                                  (n = async writes settled), or ERR if
//	                                  any of them failed
//	STATS\n                        -> STAT <name> <value>\n per counter,
//	                                  then END\n (engine, enclave,
//	                                  background-maintenance and replication
//	                                  counters)
//	REPL CKPT <shard>\n            -> OK\n + the shard's portable verified
//	                                  checkpoint as a binary stream
//	REPL TAIL <shard> <fromTs>\n   -> OK\n + attested commit-group frames
//	                                  from fromTs, streamed live (the
//	                                  connection becomes the stream), or
//	                                  ERR BEHIND\n when fromTs left the
//	                                  leader's retained ring (the exact
//	                                  token followers match to re-bootstrap)
//	REPL PROMOTE\n                 -> OK <epoch>\n — failover: promotes this
//	                                  follower to a writable leader under a
//	                                  new replication epoch (all shards
//	                                  together); frames the old leader keeps
//	                                  shipping are fenced
//	QUIT\n                         -> closes the connection
//
// Fields are binary-safe: a field is either a bare token (no spaces,
// quotes or control bytes) or a Go-syntax double-quoted string ("a b\n\x00"
// works as a key or value). Responses quote any field that needs it.
// Malformed input never corrupts framing — it draws an ERR line.
//
// Every response reflects verified state. Batches apply atomically in one
// enclave round trip; SCAN streams through the verified iterator (with one
// chunk of background prefetch), so rows arrive incrementally and a
// tampering host surfaces as an ERR line terminating the stream (clients
// must treat ERR as a stream terminator) rather than wrong data.
//
// Writes from SEPARATE connections ride the store's shared group-commit
// pipeline: each connection is served by its own goroutine, so concurrent
// PUT/DEL/MPUT/BATCH commits coalesce into shared WAL fsyncs and counter
// bumps instead of serializing one fsync per request. -commit-window adds a
// deliberate batching delay for fsync-bound deployments; -commit-max-ops
// caps group size (1 disables coalescing).
//
// -shards N partitions the store into N hash-partitioned authenticated
// instances behind the router: concurrent connections spread across N
// commit pipelines, SCAN merges the per-shard verified streams, and STATS
// reports both aggregate and per-shard (shardN_*) gauges.
//
// With -repl-secret the server becomes a replication leader: followers
// bootstrap over REPL CKPT and stay current over REPL TAIL, every stream
// attested against the shared secret (the stand-in for remote attestation).
// With -follow the server opens as a read-only replica of that leader:
// reads verify against the follower's own Merkle forest, writes draw ERR,
// and STATS exposes repl_lag_groups / repl_lag_bytes.
//
// Usage: elsm-server [-addr :7878] [-dir /path/to/data] [-mode p2|p1|unsecured]
//
//	[-shards 1] [-commit-window 0] [-commit-max-ops 0] [-iter-chunk-keys 0]
//	[-repl-secret s] [-follow leader:7878]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"time"

	"elsm"
	"elsm/internal/repl"
	"elsm/internal/sgx"
)

// maxBatchOps bounds one BATCH group (protocol abuse guard).
const maxBatchOps = 10000

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7878", "listen address")
		dir          = flag.String("dir", "", "data directory (empty: in-memory)")
		mode         = flag.String("mode", "p2", "store mode: p2 | p1 | unsecured")
		shards       = flag.Int("shards", 1, "hash-partitioned shard count (power of two; each shard runs its own WAL, committer and maintenance worker)")
		commitWindow = flag.Duration("commit-window", 0, "group-commit batching window (0: natural batching only, -1ns: adaptive from fsync latency)")
		commitMaxOps = flag.Int("commit-max-ops", 0, "max operations per commit group (0: unbounded, 1: no coalescing)")
		chunkKeys    = flag.Int("iter-chunk-keys", 0, "keys per streamed SCAN chunk (0: default)")
		inlineComp   = flag.Bool("inline-compaction", false, "run flush/compaction inline on the commit path (ablation baseline; stalls writers)")
		compWorkers  = flag.Int("compaction-workers", 0, "maintenance worker pool size shared across shards (0: max(2, GOMAXPROCS/2))")
		follow       = flag.String("follow", "", "run as a read-only replica of the leader at this address (requires -repl-secret and mode p2)")
		replSecret   = flag.String("repl-secret", "", "shared attestation secret binding leader and followers (stands in for remote attestation; required with -follow, enables the leader's REPL endpoint)")
	)
	flag.Parse()

	opts := elsm.Options{
		Dir:               *dir,
		Shards:            *shards,
		GroupCommitWindow: *commitWindow,
		GroupCommitMaxOps: *commitMaxOps,
		IterChunkKeys:     *chunkKeys,
		InlineCompaction:  *inlineComp,
		CompactionWorkers: *compWorkers,
	}
	switch *mode {
	case "p2":
		opts.Mode = elsm.ModeP2
	case "p1":
		opts.Mode = elsm.ModeP1
		opts.CacheSize = 8 << 20
	case "unsecured":
		opts.Mode = elsm.ModeUnsecured
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	if *replSecret != "" {
		opts.Platform = sgx.NewPlatformFromSecret([]byte(*replSecret))
	}
	var store *elsm.Store
	var err error
	if *follow != "" {
		if *replSecret == "" {
			log.Fatal("-follow requires -repl-secret (the shared attestation root)")
		}
		store, err = elsm.OpenFollower(opts, elsm.NewFollowerSource(*follow))
	} else {
		store, err = elsm.Open(opts)
	}
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	defer store.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	role := "leader"
	if store.IsFollower() {
		role = fmt.Sprintf("follower of %s", *follow)
	}
	log.Printf("elsm-server (%s, %d shard(s), %s) listening on %s", store.Mode(), store.Shards(), role, ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		go serve(conn, store)
	}
}

// splitFields tokenizes one protocol line: fields are bare tokens or
// Go-syntax quoted strings, separated by spaces.
func splitFields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			prefix, err := strconv.QuotedPrefix(line[i:])
			if err != nil {
				return nil, fmt.Errorf("bad quoted field at column %d", i+1)
			}
			field, err := strconv.Unquote(prefix)
			if err != nil {
				return nil, fmt.Errorf("bad quoted field at column %d", i+1)
			}
			i += len(prefix)
			if i < len(line) && line[i] != ' ' {
				return nil, fmt.Errorf("garbage after quoted field at column %d", i+1)
			}
			out = append(out, field)
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' {
			if line[j] == '"' {
				return nil, fmt.Errorf("unexpected quote inside bare field at column %d", j+1)
			}
			j++
		}
		out = append(out, line[i:j])
		i = j
	}
	return out, nil
}

// field renders a byte string for the wire: bare when it is a printable
// token, Go-quoted otherwise (binary safety in responses).
func field(b []byte) string {
	if len(b) == 0 {
		return `""`
	}
	for _, c := range b {
		if c <= ' ' || c == '"' || c == '\\' || c >= 0x7f {
			return strconv.Quote(string(b))
		}
	}
	return string(b)
}

// session is per-connection protocol state: open snapshots and the
// unsettled async-commit futures awaiting a SYNC.
type session struct {
	snaps    map[uint64]*elsm.Snapshot
	nextSnap uint64
	futures  []*elsm.CommitFuture
}

// maxSessionFutures bounds unsettled PUTASYNC futures per connection
// (protocol abuse guard — the store's MaxAsyncCommitBacklog bounds the
// global pipeline; this bounds one client's bookkeeping).
const maxSessionFutures = 100000

func serve(conn net.Conn, store *elsm.Store) {
	defer conn.Close()
	sess := &session{snaps: make(map[uint64]*elsm.Snapshot)}
	defer func() {
		for _, snap := range sess.snaps {
			snap.Close()
		}
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for sc.Scan() {
		line := sc.Text()
		fields, err := splitFields(line)
		if err != nil {
			fmt.Fprintf(w, "ERR malformed line: %v\n", err)
			w.Flush()
			continue
		}
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToUpper(fields[0])
		args := fields[1:]
		switch {
		case cmd == "QUIT":
			return
		case cmd == "PUT" && len(args) == 2:
			ts, err := store.Put([]byte(args[0]), []byte(args[1]))
			reply(w, err, "OK %d", ts)
		case cmd == "GET" && len(args) == 1:
			res, err := store.Get([]byte(args[0]))
			switch {
			case err != nil:
				fmt.Fprintf(w, "ERR %v\n", err)
			case !res.Found:
				fmt.Fprintln(w, "NOTFOUND")
			default:
				fmt.Fprintf(w, "VALUE %d %s\n", res.Ts, field(res.Value))
			}
		case cmd == "DEL" && len(args) == 1:
			ts, err := store.Delete([]byte(args[0]))
			reply(w, err, "OK %d", ts)
		case cmd == "MPUT" && len(args) >= 2 && len(args)%2 == 0:
			b := store.NewBatch()
			for i := 0; i < len(args); i += 2 {
				b.Put([]byte(args[i]), []byte(args[i+1]))
			}
			ts, err := b.Commit()
			reply(w, err, "OK %d", ts)
		case cmd == "BATCH" && len(args) == 1:
			if !serveBatch(w, sc, store, args[0]) {
				return
			}
		case cmd == "SCAN" && len(args) == 2:
			serveScan(w, store, []byte(args[0]), []byte(args[1]))
		case cmd == "SNAPSHOT" && len(args) == 0:
			snap, err := store.Snapshot()
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			sess.nextSnap++
			sess.snaps[sess.nextSnap] = snap
			fmt.Fprintf(w, "OK %d %d\n", sess.nextSnap, snap.Ts())
		case cmd == "SGET" && len(args) == 2:
			snap, ok := sess.lookup(args[0])
			if !ok {
				fmt.Fprintf(w, "ERR unknown snapshot %q\n", args[0])
				break
			}
			res, err := snap.Get([]byte(args[1]))
			switch {
			case err != nil:
				fmt.Fprintf(w, "ERR %v\n", err)
			case !res.Found:
				fmt.Fprintln(w, "NOTFOUND")
			default:
				fmt.Fprintf(w, "VALUE %d %s\n", res.Ts, field(res.Value))
			}
		case cmd == "SSCAN" && len(args) == 3:
			snap, ok := sess.lookup(args[0])
			if !ok {
				fmt.Fprintf(w, "ERR unknown snapshot %q\n", args[0])
				break
			}
			serveIter(w, snap.Iter([]byte(args[1]), []byte(args[2])))
		case cmd == "RELEASE" && len(args) == 1:
			snap, ok := sess.lookup(args[0])
			if !ok {
				fmt.Fprintf(w, "ERR unknown snapshot %q\n", args[0])
				break
			}
			snap.Close()
			id, _ := strconv.ParseUint(args[0], 10, 64)
			delete(sess.snaps, id)
			fmt.Fprintln(w, "OK")
		case cmd == "PUTASYNC" && len(args) == 2:
			if len(sess.futures) >= maxSessionFutures {
				fmt.Fprintf(w, "ERR async backlog full (%d unsettled): SYNC first\n", len(sess.futures))
				break
			}
			b := store.NewBatch()
			b.Put([]byte(args[0]), []byte(args[1]))
			fut, err := b.CommitAsync(nil)
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			ts, err := fut.Ts(nil)
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			sess.futures = append(sess.futures, fut)
			fmt.Fprintf(w, "ACK %d\n", ts)
		case cmd == "SYNC" && len(args) == 0:
			if err := store.Sync(nil); err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			settled := len(sess.futures)
			var failed error
			for _, fut := range sess.futures {
				if _, err := fut.Wait(nil); err != nil && failed == nil {
					failed = err
				}
			}
			sess.futures = sess.futures[:0]
			if failed != nil {
				fmt.Fprintf(w, "ERR async commit failed: %v\n", failed)
				break
			}
			fmt.Fprintf(w, "OK %d\n", settled)
		case cmd == "STATS" && len(args) == 0:
			serveStats(w, store)
		case cmd == "REPL" && len(args) == 1 && strings.ToUpper(args[0]) == "PROMOTE":
			epoch, err := store.Promote(nil)
			reply(w, err, "OK %d", epoch)
		case cmd == "REPL" && len(args) >= 2:
			// The connection becomes a one-way binary stream (checkpoint
			// bytes or group frames) and ends with it.
			serveRepl(w, conn, store, args)
			return
		default:
			fmt.Fprintf(w, "ERR unknown command or wrong arity %q\n", cmd)
		}
		w.Flush()
	}
}

// serveBatch reads n op lines off the connection and commits them as one
// atomic group. Any malformed op line aborts the whole batch with ERR and
// nothing is applied; the remaining declared op lines are still consumed,
// so a pipelining client's leftover ops are never executed as top-level
// commands and the reply stream stays in sync.
// A bad size declaration is a framing-level protocol error: the server
// cannot know how many op lines will follow, so it replies ERR and reports
// the session unrecoverable (the caller closes the connection).
func serveBatch(w *bufio.Writer, sc *bufio.Scanner, store *elsm.Store, nArg string) (ok bool) {
	n, err := strconv.Atoi(nArg)
	if err != nil || n < 0 || n > maxBatchOps {
		fmt.Fprintf(w, "ERR bad batch size %q (max %d), closing connection\n", nArg, maxBatchOps)
		return false
	}
	drain := func(read int) {
		for i := read; i < n; i++ {
			if !sc.Scan() {
				return
			}
		}
	}
	b := store.NewBatch()
	// The ERR is buffered, not flushed: a correct client sends all n op
	// lines before reading the single batch reply, so the drain below must
	// keep consuming input first (flushing here would deadlock a client
	// that is still mid-send on an unbuffered transport). The serve loop
	// flushes after serveBatch returns.
	abort := func(format string, args ...interface{}) {
		fmt.Fprintf(w, format+"\n", args...)
	}
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			abort("ERR batch truncated at op %d of %d", i, n)
			return true
		}
		fields, err := splitFields(sc.Text())
		if err != nil {
			abort("ERR malformed batch op %d: %v", i, err)
			drain(i + 1)
			return true
		}
		if len(fields) == 0 {
			abort("ERR empty batch op %d", i)
			drain(i + 1)
			return true
		}
		switch cmd := strings.ToUpper(fields[0]); {
		case cmd == "PUT" && len(fields) == 3:
			b.Put([]byte(fields[1]), []byte(fields[2]))
		case cmd == "DEL" && len(fields) == 2:
			b.Delete([]byte(fields[1]))
		default:
			abort("ERR bad batch op %d: %q", i, fields[0])
			drain(i + 1)
			return true
		}
	}
	ts, err := b.Commit()
	reply(w, err, "OK %d", ts)
	return true
}

// lookup resolves a snapshot id argument against the session table.
func (sess *session) lookup(arg string) (*elsm.Snapshot, bool) {
	id, err := strconv.ParseUint(arg, 10, 64)
	if err != nil {
		return nil, false
	}
	snap, ok := sess.snaps[id]
	return snap, ok
}

// serveScan streams verified rows as the iterator produces them. A
// mid-stream verification failure terminates the stream with ERR instead
// of END — the client discards the partial rows.
func serveScan(w *bufio.Writer, store *elsm.Store, start, end []byte) {
	serveIter(w, store.Iter(start, end))
}

// serveIter renders one verified stream (live or snapshot) to the wire.
func serveIter(w *bufio.Writer, it *elsm.Iterator) {
	count := 0
	for it.Next() {
		fmt.Fprintf(w, "ROW %s %s\n", field(it.Key()), field(it.Value()))
		count++
		if count%64 == 0 {
			w.Flush() // stream incrementally, don't buffer the whole range
		}
	}
	if err := it.Close(); err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(w, "END %d\n", count)
}

// serveStats dumps the store's counters, one STAT line each — the wire
// form of elsm.Stats, including the background-maintenance counters
// (flush/compaction stalls, background compactions, pinned runs) and the
// resolved group-commit window. The aggregate lines sum every shard; the
// trailing shardN_* gauges (WAL syncs, open snapshots, async commits in
// flight, per-shard pipeline activity) expose the sharded topology, so an
// operator can see whether load spreads or one partition runs hot.
func serveStats(w *bufio.Writer, store *elsm.Store) {
	st := store.Stats()
	for _, kv := range []struct {
		name string
		v    uint64
	}{
		{"shards", uint64(st.Shards)},
		{"flushes", st.Flushes},
		{"compactions", st.Compactions},
		{"background_compactions", st.BackgroundCompactions},
		{"bytes_flushed", st.BytesFlushed},
		{"bytes_compacted", st.BytesCompacted},
		{"records_dropped", st.RecordsDropped},
		{"manifest_updates", st.ManifestUpdates},
		{"disk_bytes", uint64(st.DiskBytes)},
		{"wal_syncs", st.WALSyncs},
		{"group_commits", st.GroupCommits},
		{"grouped_records", st.GroupedRecords},
		{"wal_torn_records", st.WALTornRecords},
		{"flush_stall_nanos", st.FlushStallNanos},
		{"compaction_stall_nanos", st.CompactionStallNanos},
		{"compaction_debt_bytes", st.CompactionDebtBytes},
		{"parallel_compactions", st.ParallelCompactions},
		{"compaction_workers_busy", st.CompactionWorkersBusy},
		{"pinned_runs", st.PinnedRuns},
		{"snapshots_open", st.SnapshotsOpen},
		{"async_commits_in_flight", st.AsyncCommitsInFlight},
		{"group_commit_window_nanos", st.GroupCommitWindowNanos},
		{"fsync_ewma_nanos", st.FsyncEWMANanos},
		{"page_faults", st.PageFaults},
		{"ecalls", st.ECalls},
		{"ocalls", st.OCalls},
		{"copied_bytes", st.CopiedBytes},
		{"enclave_bytes", uint64(st.EnclaveBytes)},
		{"verified_gets", st.VerifiedGets},
		{"proof_bytes", st.ProofBytes},
		{"runs_probed", st.RunsProbed},
		{"repl_lag_groups", st.ReplLagGroups},
		{"repl_lag_bytes", st.ReplLagBytes},
		{"followers_connected", st.FollowersConnected},
		{"repl_reconnects", st.ReplReconnects},
		{"repl_rebootstraps", st.ReplRebootstraps},
		{"repl_epoch", st.ReplEpoch},
	} {
		fmt.Fprintf(w, "STAT %s %d\n", kv.name, kv.v)
	}
	for i, ss := range store.ShardStats() {
		fmt.Fprintf(w, "STAT shard%d_wal_syncs %d\n", i, ss.WALSyncs)
		fmt.Fprintf(w, "STAT shard%d_group_commits %d\n", i, ss.GroupCommits)
		fmt.Fprintf(w, "STAT shard%d_snapshots_open %d\n", i, ss.SnapshotsOpen)
		fmt.Fprintf(w, "STAT shard%d_async_commits_in_flight %d\n", i, ss.AsyncCommitsInFlight)
		fmt.Fprintf(w, "STAT shard%d_disk_bytes %d\n", i, uint64(ss.DiskBytes))
		fmt.Fprintf(w, "STAT shard%d_compaction_debt_bytes %d\n", i, ss.CompactionDebtBytes)
	}
	fmt.Fprintln(w, "END")
}

// serveRepl handles the replication endpoint:
//
//	REPL CKPT <shard>\n          -> OK\n + the shard's checkpoint stream
//	REPL TAIL <shard> <fromTs>\n -> OK\n + attested group frames from
//	                                fromTs, streamed until either side goes
//	                                away, or ERR BEHIND\n when fromTs has
//	                                fallen out of the leader's retained
//	                                ring (the follower re-bootstraps)
//
// TAIL answers its status line eagerly, right after the shard and ring
// checks: a caught-up follower of an idle leader would otherwise wait for
// the first frame with no status at all, wedging its status read (and its
// Close) indefinitely. CKPT defers OK until the stream's first byte, so
// export errors that precede any payload surface on the status line.
func serveRepl(w *bufio.Writer, conn net.Conn, store *elsm.Store, args []string) {
	sub := strings.ToUpper(args[0])
	shard, err := strconv.Atoi(args[1])
	if err != nil || shard < 0 || shard >= store.Shards() {
		fmt.Fprintf(w, "ERR bad shard %q\n", args[1])
		return
	}
	sw := &statusWriter{w: w, conn: conn}
	switch {
	case sub == "CKPT" && len(args) == 2:
		err = store.ServeCheckpoint(shard, sw)
	case sub == "TAIL" && len(args) == 3:
		fromTs, perr := strconv.ParseUint(args[2], 10, 64)
		if perr != nil {
			fmt.Fprintf(w, "ERR bad fromTs %q\n", args[2])
			return
		}
		if err := store.TailReady(shard, fromTs); err != nil {
			writeReplErr(w, err)
			return
		}
		fmt.Fprintln(w, "OK")
		w.Flush()
		sw.started = true
		// Followers never send after the command line: the next read
		// completes when the peer closes, unblocking a tail idling at the
		// head of a quiet leader.
		stop := make(chan struct{})
		go func() {
			conn.Read(make([]byte, 1))
			close(stop)
		}()
		err = store.ServeTail(shard, fromTs, sw, stop)
	default:
		fmt.Fprintf(w, "ERR unknown REPL form %q\n", sub)
		return
	}
	if !sw.started && err != nil {
		writeReplErr(w, err)
	}
}

// writeReplErr renders a replication error as a status line, using the
// dedicated BEHIND token for the re-bootstrap condition so followers can
// match it exactly instead of parsing error prose.
func writeReplErr(w *bufio.Writer, err error) {
	if errors.Is(err, repl.ErrBehind) {
		fmt.Fprintln(w, repl.StatusBehind)
		return
	}
	fmt.Fprintf(w, "ERR %v\n", err)
}

// replWriteTimeout bounds each REPL stream write: a follower that stopped
// draining its socket fails its stream instead of wedging the leader's
// serve goroutine (and, through the hub's frame fan-out, other followers)
// forever.
const replWriteTimeout = 30 * time.Second

// statusWriter defers the REPL "OK" status line until the first payload
// byte, letting pre-stream failures use the status line instead. Every
// write is deadline-bounded on the underlying connection.
type statusWriter struct {
	w       *bufio.Writer
	conn    net.Conn
	started bool
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if !sw.started {
		sw.started = true
		fmt.Fprintln(sw.w, "OK")
	}
	sw.conn.SetWriteDeadline(time.Now().Add(replWriteTimeout))
	defer sw.conn.SetWriteDeadline(time.Time{})
	n, err := sw.w.Write(p)
	if err == nil {
		// Flush per write: tail frames must reach the follower promptly.
		err = sw.w.Flush()
	}
	return n, err
}

func reply(w *bufio.Writer, err error, format string, args ...interface{}) {
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(w, format+"\n", args...)
}
