// Command elsm-server exposes an authenticated eLSM store over TCP
// (stdlib net only), modelling the paper's trusted cloud application
// serving verified reads and durable writes to remote clients.
//
// Two wire protocols share the listen port, distinguished per connection
// by the first byte (binary frames start 0x00; line commands start with a
// printable letter), so legacy clients and replication followers keep
// working against a binary-default server:
//
//   - binary (default): the length-prefixed framed protocol of
//     internal/netproto, with per-connection request pipelining, admission
//     control and out-of-order responses — see internal/netsrv for the
//     serving model and internal/netclient for the client. This is the
//     production front end: many concurrent requests per connection, writes
//     from all connections coalescing into shared group-commit fsyncs.
//
//   - line: the original newline-delimited protocol (one request, one
//     response, in order), kept for debugging by hand and as the
//     ablation baseline. Commands:
//
//     PUT <key> <value>\n            -> OK <ts>\n
//     GET <key>\n                    -> VALUE <ts> <value>\n | NOTFOUND\n
//     DEL <key>\n                    -> OK <ts>\n
//     MPUT <k> <v> [<k> <v> ...]\n   -> OK <ts>\n            (atomic batch)
//     BATCH <n>\n                    followed by n op lines, each
//     PUT <key> <value>\n | DEL <key>\n,
//     -> OK <ts>\n            (atomic batch)
//     A bad op aborts the batch with ERR, applies NOTHING, and consumes
//     the remaining declared op lines (pipelined clients stay in sync).
//     A bad <n> is a protocol error: ERR, then the connection closes.
//     SCAN <start> <end>\n           -> ROW <key> <value>\n rows streamed as
//     they verify, then END <count>\n
//     SNAPSHOT\n                     -> OK <id> <ts>\n — pins a verified
//     point-in-time session (per connection)
//     SGET <id> <key>\n              -> VALUE/NOTFOUND as GET, against
//     the snapshot's pinned state
//     SSCAN <id> <start> <end>\n     -> ROW.../END as SCAN, against the
//     snapshot (repeatable bit for bit)
//     RELEASE <id>\n                 -> OK\n — releases the snapshot's pins
//     PUTASYNC <key> <value>\n       -> ACK <ts>\n once the write's trusted
//     timestamp is assigned (NOT yet fsynced)
//     SYNC\n                         -> OK <n>\n after every commit this
//     connection acknowledged is durable
//     STATS\n                        -> STAT <name> <value>\n per counter,
//     then END\n
//     REPL CKPT <shard>\n            -> OK\n + portable verified checkpoint
//     REPL TAIL <shard> <fromTs>\n   -> OK\n + attested commit-group frames,
//     or ERR BEHIND\n (re-bootstrap token)
//     REPL PROMOTE\n                 -> OK <epoch>\n — failover promotion
//     QUIT\n                         -> closes the connection
//
// Line-protocol fields are binary-safe: bare tokens or Go-syntax quoted
// strings; responses quote any field that needs it. Malformed input never
// corrupts framing — it draws an ERR line.
//
// Every response on either protocol reflects verified state: reads and
// scans flow through the enclave's authenticated structures, and a
// tampering host surfaces as a typed error (binary) or ERR line
// terminating the stream (line) rather than wrong data.
//
// Writes from separate connections ride the store's shared group-commit
// pipeline; the binary protocol additionally pipelines within one
// connection, so a single client's concurrent requests coalesce too.
// -commit-window adds a deliberate batching delay for fsync-bound
// deployments; -commit-max-ops caps group size (1 disables coalescing).
//
// -shards N partitions the store into N hash-partitioned authenticated
// instances behind the router: concurrent connections spread across N
// commit pipelines, SCAN merges the per-shard verified streams, and STATS
// reports both aggregate and per-shard (shardN_*) gauges.
//
// Admission control (binary protocol): -max-connections bounds concurrent
// connections, -pipeline-depth bounds requests in flight per connection,
// -max-inflight bounds them globally. Excess load is shed with a typed
// BUSY response instead of queueing without bound; STATS exposes the
// net_* gauges behind each limit.
//
// Observability: -admin starts an HTTP admin endpoint serving /metrics
// (Prometheus text format: every STATS gauge plus latency-histogram
// summaries with per-shard labels), /debug/pprof/* (the standard Go
// profiles), and the trace/slow-op/event rings as JSON at /traces and
// /events. A scrape is one GET:
//
//	curl http://127.0.0.1:7879/metrics
//
// The endpoint is plaintext and unauthenticated; bind it to localhost
// (as in the example) and put a reverse proxy in front if it must be
// reachable remotely. -slow-op-threshold and -trace-sample-every tune
// what the rings capture; instrumentation is cheap enough to stay on.
//
// With -repl-secret the server becomes a replication leader: followers
// bootstrap over REPL CKPT and stay current over REPL TAIL, every stream
// attested against the shared secret (the stand-in for remote attestation).
// With -follow the server opens as a read-only replica of that leader:
// reads verify against the follower's own Merkle forest, writes draw
// typed read-only errors, and STATS exposes repl_lag_groups /
// repl_lag_bytes.
//
// Usage: elsm-server [-addr :7878] [-dir /path/to/data] [-mode p2|p1|unsecured]
//
//	[-proto binary|line] [-shards 1] [-commit-window 0] [-commit-max-ops 0]
//	[-max-connections 1024] [-pipeline-depth 64] [-max-inflight 4096]
//	[-iter-chunk-keys 0] [-repl-secret s] [-follow leader:7878]
//	[-admin 127.0.0.1:7879] [-slow-op-threshold 0] [-trace-sample-every 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"elsm"
	"elsm/internal/netsrv"
	"elsm/internal/sgx"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7878", "listen address")
		dir          = flag.String("dir", "", "data directory (empty: in-memory)")
		mode         = flag.String("mode", "p2", "store mode: p2 | p1 | unsecured")
		proto        = flag.String("proto", "binary", "wire protocol: binary (pipelined frames; line connections still sniffed and served) | line (legacy line protocol only)")
		shards       = flag.Int("shards", 1, "hash-partitioned shard count (power of two; each shard runs its own WAL, committer and maintenance worker)")
		commitWindow = flag.Duration("commit-window", 0, "group-commit batching window (0: natural batching only, -1ns: adaptive from fsync latency)")
		commitMaxOps = flag.Int("commit-max-ops", 0, "max operations per commit group (0: unbounded, 1: no coalescing)")
		chunkKeys    = flag.Int("iter-chunk-keys", 0, "keys per streamed SCAN chunk (0: default)")
		inlineComp   = flag.Bool("inline-compaction", false, "run flush/compaction inline on the commit path (ablation baseline; stalls writers)")
		compWorkers  = flag.Int("compaction-workers", 0, "maintenance worker pool size shared across shards (0: max(2, GOMAXPROCS/2))")
		maxConns     = flag.Int("max-connections", netsrv.DefaultMaxConnections, "max concurrent client connections; further connects are shed with BUSY")
		pipeDepth    = flag.Int("pipeline-depth", netsrv.DefaultPipelineDepth, "max pipelined requests in flight per connection")
		maxInflight  = flag.Int("max-inflight", netsrv.DefaultMaxInflight, "max requests in flight across all connections; excess is shed with BUSY")
		follow       = flag.String("follow", "", "run as a read-only replica of the leader at this address (requires -repl-secret and mode p2)")
		replSecret   = flag.String("repl-secret", "", "shared attestation secret binding leader and followers (stands in for remote attestation; required with -follow, enables the leader's REPL endpoint)")
		adminAddr    = flag.String("admin", "", "observability HTTP listen address (e.g. 127.0.0.1:7879) serving /metrics, /debug/pprof/*, /traces and /events; empty disables. Plaintext and unauthenticated — keep it on localhost or behind a proxy")
		slowOp       = flag.Duration("slow-op-threshold", 0, "end-to-end latency above which a commit group's stage breakdown lands in the slow-op log (0: the 50ms default)")
		traceEvery   = flag.Int("trace-sample-every", 0, "trace every Nth commit group through the pipeline (0: the default 64; 1: every group)")
	)
	flag.Parse()

	opts := elsm.Options{
		Dir:               *dir,
		Shards:            *shards,
		GroupCommitWindow: *commitWindow,
		GroupCommitMaxOps: *commitMaxOps,
		IterChunkKeys:     *chunkKeys,
		InlineCompaction:  *inlineComp,
		CompactionWorkers: *compWorkers,
		SlowOpThreshold:   *slowOp,
		TraceSampleEvery:  *traceEvery,
	}
	switch *mode {
	case "p2":
		opts.Mode = elsm.ModeP2
	case "p1":
		opts.Mode = elsm.ModeP1
		opts.CacheSize = 8 << 20
	case "unsecured":
		opts.Mode = elsm.ModeUnsecured
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	if *replSecret != "" {
		opts.Platform = sgx.NewPlatformFromSecret([]byte(*replSecret))
	}
	var store *elsm.Store
	var err error
	if *follow != "" {
		if *replSecret == "" {
			log.Fatal("-follow requires -repl-secret (the shared attestation root)")
		}
		store, err = elsm.OpenFollower(opts, elsm.NewFollowerSource(*follow))
	} else {
		store, err = elsm.Open(opts)
	}
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	defer store.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	role := "leader"
	if store.IsFollower() {
		role = fmt.Sprintf("follower of %s", *follow)
	}
	log.Printf("elsm-server (%s, %d shard(s), %s, %s protocol) listening on %s",
		store.Mode(), store.Shards(), role, *proto, ln.Addr())

	switch *proto {
	case "binary":
		cfg, err := netConfig(*maxConns, *pipeDepth, *maxInflight)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := netsrv.New(store, cfg)
		if err != nil {
			log.Fatalf("server config: %v", err)
		}
		startAdmin(*adminAddr, srv)
		if err := srv.Serve(ln); err != nil {
			log.Fatalf("serve: %v", err)
		}
	case "line":
		if *adminAddr != "" {
			// The admin handler hangs off a netsrv.Server for its net_*
			// gauges; in line mode no binary front end serves traffic, so
			// build one solely to host the handler (its gauges read zero).
			srv, err := netsrv.New(store, netsrv.Config{})
			if err != nil {
				log.Fatalf("server config: %v", err)
			}
			startAdmin(*adminAddr, srv)
		}
		for {
			conn, err := ln.Accept()
			if err != nil {
				log.Printf("accept: %v", err)
				continue
			}
			go serve(conn, store)
		}
	default:
		log.Fatalf("unknown protocol %q (want binary or line)", *proto)
	}
}

// startAdmin starts the opt-in observability HTTP listener. The handler
// is plaintext and unauthenticated by design (diagnostics, not data), so
// the operator guidance is a localhost bind; a non-loopback bind is the
// operator's explicit choice and gets a log warning rather than a
// refusal.
func startAdmin(addr string, srv *netsrv.Server) {
	if addr == "" {
		return
	}
	aln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("admin listen: %v", err)
	}
	if ta, ok := aln.Addr().(*net.TCPAddr); ok && !ta.IP.IsLoopback() {
		log.Printf("WARNING: admin endpoint on non-loopback %s is plaintext and unauthenticated; front it with a proxy", aln.Addr())
	}
	log.Printf("admin endpoint on http://%s (/metrics /debug/pprof/ /traces /events)", aln.Addr())
	go func() {
		if err := http.Serve(aln, srv.AdminHandler()); err != nil {
			log.Printf("admin serve: %v", err)
		}
	}()
}

// netConfig validates the admission-control flags into a netsrv.Config.
// Unlike netsrv.Config (where zero means "use the default"), the flags
// default to the concrete values, so a zero or negative here is always an
// operator mistake and is rejected before the listener starts.
func netConfig(maxConns, pipeDepth, maxInflight int) (netsrv.Config, error) {
	if maxConns <= 0 {
		return netsrv.Config{}, fmt.Errorf("-max-connections must be > 0, got %d", maxConns)
	}
	if pipeDepth <= 0 {
		return netsrv.Config{}, fmt.Errorf("-pipeline-depth must be > 0, got %d", pipeDepth)
	}
	if maxInflight <= 0 {
		return netsrv.Config{}, fmt.Errorf("-max-inflight must be > 0, got %d", maxInflight)
	}
	return netsrv.Config{
		MaxConnections: maxConns,
		PipelineDepth:  pipeDepth,
		MaxInflight:    maxInflight,
	}, nil
}

// serve handles one legacy line-protocol connection. The protocol lives in
// internal/netsrv (shared with the binary server's sniffing path); this
// wrapper keeps the command's historical entry point, which the tests
// drive directly over in-memory pipes.
func serve(conn net.Conn, store *elsm.Store) {
	netsrv.ServeLine(conn, store)
}
