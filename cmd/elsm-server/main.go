// Command elsm-server exposes an authenticated eLSM store over a minimal
// line-oriented TCP protocol (stdlib net only), modelling the paper's
// trusted cloud application serving verified reads to clients:
//
//	PUT <key> <value>\n      -> OK <ts>\n
//	GET <key>\n              -> VALUE <ts> <value>\n | NOTFOUND\n
//	DEL <key>\n              -> OK <ts>\n
//	SCAN <start> <end>\n     -> N <count>\n then <key> <value>\n rows
//	QUIT\n                   -> closes the connection
//
// Every response reflects verified state: a tampering host would surface
// as ERR auth lines rather than wrong data.
//
// Usage: elsm-server [-addr :7878] [-dir /path/to/data] [-mode p2|p1|unsecured]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"

	"elsm"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:7878", "listen address")
		dir  = flag.String("dir", "", "data directory (empty: in-memory)")
		mode = flag.String("mode", "p2", "store mode: p2 | p1 | unsecured")
	)
	flag.Parse()

	opts := elsm.Options{Dir: *dir}
	switch *mode {
	case "p2":
		opts.Mode = elsm.ModeP2
	case "p1":
		opts.Mode = elsm.ModeP1
		opts.CacheSize = 8 << 20
	case "unsecured":
		opts.Mode = elsm.ModeUnsecured
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	store, err := elsm.Open(opts)
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	defer store.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("elsm-server (%s) listening on %s", store.Mode(), ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		go serve(conn, store)
	}
}

func serve(conn net.Conn, store *elsm.Store) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for sc.Scan() {
		line := sc.Text()
		fields := strings.SplitN(line, " ", 3)
		cmd := strings.ToUpper(fields[0])
		switch {
		case cmd == "QUIT":
			return
		case cmd == "PUT" && len(fields) == 3:
			ts, err := store.Put([]byte(fields[1]), []byte(fields[2]))
			reply(w, err, "OK %d", ts)
		case cmd == "GET" && len(fields) >= 2:
			res, err := store.Get([]byte(fields[1]))
			switch {
			case err != nil:
				fmt.Fprintf(w, "ERR %v\n", err)
			case !res.Found:
				fmt.Fprintln(w, "NOTFOUND")
			default:
				fmt.Fprintf(w, "VALUE %d %s\n", res.Ts, res.Value)
			}
		case cmd == "DEL" && len(fields) >= 2:
			ts, err := store.Delete([]byte(fields[1]))
			reply(w, err, "OK %d", ts)
		case cmd == "SCAN" && len(fields) == 3:
			results, err := store.Scan([]byte(fields[1]), []byte(fields[2]))
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			fmt.Fprintf(w, "N %d\n", len(results))
			for _, r := range results {
				fmt.Fprintf(w, "%s %s\n", r.Key, r.Value)
			}
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", line)
		}
		w.Flush()
	}
}

func reply(w *bufio.Writer, err error, format string, args ...interface{}) {
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(w, format+"\n", args...)
}
