package elsm

import (
	"testing"

	"elsm/internal/core"
	"elsm/internal/record"
)

// bulkLoad populates an empty store through the authenticated bulk-ingest
// path (every mode and the shard router support it) — the loading hook the
// tests use instead of the deprecated Internal() escape hatch.
func bulkLoad(t testing.TB, s *Store, recs []record.Record) {
	t.Helper()
	type bulk interface {
		BulkLoad([]record.Record) error
	}
	if err := s.base().(bulk).BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
}

// storeDB drives the PUBLIC Store surface through the ycsb.DB interface, so
// the workload tests exercise exactly what a client sees (batches through
// Batch.Commit, range reads through the public iterator) on sharded and
// unsharded stores alike.
type storeDB struct{ s *Store }

func (d storeDB) Put(key, value []byte) (uint64, error) { return d.s.Put(key, value) }
func (d storeDB) Get(key []byte) (core.Result, error)   { return d.s.Get(key) }

func (d storeDB) ApplyBatch(ops []core.BatchOp) (uint64, error) {
	b := d.s.NewBatch()
	for _, op := range ops {
		if op.Delete {
			b.Delete(op.Key)
		} else {
			b.Put(op.Key, op.Value)
		}
	}
	return b.Commit()
}

func (d storeDB) IterAt(start, end []byte, tsq uint64) core.Iterator {
	return d.s.IterAt(start, end, tsq)
}
