package elsm

import (
	"elsm/internal/core"
	"elsm/internal/lsm"
	"elsm/internal/sgx"
	"elsm/internal/shard"
)

// Stats is a point-in-time snapshot of the store's engine and simulated-
// enclave activity, for observability and the benchmark harness. On a
// sharded store, Store.Stats aggregates across shards (counters sum;
// per-pipeline gauges like GroupCommitWindowNanos report the maximum) and
// Store.ShardStats exposes the per-shard breakdown.
type Stats struct {
	// Shards is the partition count these counters cover: the store's
	// shard count for the aggregate view, 1 for a per-shard entry.
	Shards int

	// Mode-independent engine counters.
	Flushes         uint64
	Compactions     uint64
	BytesFlushed    uint64
	BytesCompacted  uint64
	RecordsDropped  uint64
	ManifestUpdates uint64
	DiskBytes       int64

	// Group-commit pipeline counters. WALSyncs/GroupCommits stay far below
	// the committed-operation count when concurrent writers coalesce;
	// GroupedRecords/GroupCommits is the mean group size. On a sharded
	// store each shard runs its own pipeline, so the aggregate counts N
	// parallel fsync streams.
	WALSyncs       uint64
	GroupCommits   uint64
	GroupedRecords uint64
	// WALTornRecords counts records dropped at recovery because their
	// commit group never completed (crash mid-append).
	WALTornRecords uint64

	// Background-maintenance counters. FlushStallNanos is writer time lost
	// waiting for a lagging background flush; CompactionStallNanos is the
	// share of it attributable to a compaction occupying the worker;
	// BackgroundCompactions counts worker-scheduled level merges;
	// PinnedRuns is the current number of run pins (snapshot readers,
	// in-flight merges) beyond version membership.
	FlushStallNanos       uint64
	CompactionStallNanos  uint64
	BackgroundCompactions uint64
	PinnedRuns            uint64
	// Compaction-scheduler gauges. CompactionDebtBytes is the total bytes
	// above the per-level size targets (the scheduler's job-ordering
	// signal, summed across shards); CompactionDebtByLevel is the same per
	// level (index 0 unused, element-wise sum across shards);
	// ParallelCompactions counts maintenance jobs in flight now (summed);
	// CompactionWorkersBusy counts busy workers in the shared pool (the
	// pool spans shards, so the aggregate takes the maximum, not the sum).
	CompactionDebtBytes   uint64
	CompactionDebtByLevel []uint64
	ParallelCompactions   uint64
	CompactionWorkersBusy uint64
	// Sessions v2 gauges. SnapshotsOpen counts open Snapshot sessions
	// (plus live iterators, which pin the same machinery); a router
	// snapshot pins every shard, so a sharded aggregate counts N per
	// open session. AsyncCommitsInFlight counts CommitAsync batches
	// acknowledged but not yet durable (bounded per shard by
	// Options.MaxAsyncCommitBacklog).
	SnapshotsOpen        uint64
	AsyncCommitsInFlight uint64
	// GroupCommitWindowNanos is the resolved leader batching window (the
	// adaptive value when GroupCommitWindow = AutoGroupCommitWindow);
	// FsyncEWMANanos is the fsync-latency EWMA feeding it. Aggregated as
	// the maximum across shards.
	GroupCommitWindowNanos uint64
	FsyncEWMANanos         uint64

	// Simulated SGX activity (zero for ModeUnsecured). Shards share one
	// enclave, so the aggregate equals any one shard's view and per-shard
	// entries repeat it.
	PageFaults    uint64
	ECalls        uint64
	OCalls        uint64
	CopiedBytes   uint64
	ResidentPages int
	EnclaveBytes  int64

	// Verification work (ModeP2 only).
	VerifiedGets uint64
	ProofBytes   uint64
	RunsProbed   uint64

	// Replication gauges (replica.go). On a follower, ReplLagGroups /
	// ReplLagBytes report how far the tail is behind the leader's head at
	// the last applied frame (summed across shards in the aggregate). On a
	// leader, FollowersConnected counts live tail streams across shards.
	ReplLagGroups      uint64
	ReplLagBytes       uint64
	FollowersConnected uint64
	// ReplReconnects counts tailer transport re-dials (summed across
	// shards); steady growth means a flaky link or a flapping leader.
	// ReplRebootstraps counts automatic checkpoint re-bootstraps after the
	// follower fell out of the leader's retained ring (repl.ErrBehind) —
	// whole-store events, repeated in every per-shard entry. ReplEpoch is
	// the store's sealed replication epoch (shard 0's on a sharded store);
	// it advances by one at each promotion and fences zombie leaders.
	ReplReconnects   uint64
	ReplRebootstraps uint64
	ReplEpoch        uint64
}

// engined is implemented by every store variant.
type engined interface {
	Engine() *lsm.Store
}

// enclaved is implemented by the enclave-hosted variants.
type enclaved interface {
	Enclave() *sgx.Enclave
}

// statsOf collects one KV instance's counters.
func statsOf(kv core.KV) Stats {
	out := Stats{Shards: 1}
	if e, ok := kv.(engined); ok {
		es := e.Engine().Stats()
		out.Flushes = es.Flushes
		out.Compactions = es.Compactions
		out.BytesFlushed = es.BytesFlushed
		out.BytesCompacted = es.BytesCompacted
		out.RecordsDropped = es.RecordsDropped
		out.ManifestUpdates = es.ManifestUpdates
		out.DiskBytes = e.Engine().DiskBytes()
		out.WALSyncs = es.WALSyncs
		out.GroupCommits = es.GroupCommits
		out.GroupedRecords = es.GroupedRecords
		out.WALTornRecords = es.WALTornRecords
		out.FlushStallNanos = es.FlushStallNanos
		out.CompactionStallNanos = es.CompactionStallNanos
		out.BackgroundCompactions = es.BackgroundCompactions
		out.PinnedRuns = es.PinnedRuns
		out.CompactionDebtBytes = es.CompactionDebtBytes
		out.CompactionDebtByLevel = append([]uint64(nil), es.CompactionDebtByLevel...)
		out.ParallelCompactions = es.ParallelCompactions
		out.CompactionWorkersBusy = es.CompactionWorkersBusy
		out.SnapshotsOpen = es.SnapshotsOpen
		out.AsyncCommitsInFlight = es.AsyncCommitsInFlight
		out.GroupCommitWindowNanos = es.GroupCommitWindowNanos
		out.FsyncEWMANanos = es.FsyncEWMANanos
	}
	if e, ok := kv.(enclaved); ok {
		st := e.Enclave().Stats()
		out.PageFaults = st.PageFaults
		out.ECalls = st.ECalls
		out.OCalls = st.OCalls
		out.CopiedBytes = st.CopiedBytes
		out.ResidentPages = st.ResidentPages
		out.EnclaveBytes = st.AllocatedBytes
	}
	if p2, ok := kv.(*core.Store); ok {
		vs := p2.VerifyStatsSnapshot()
		out.VerifiedGets = vs.Gets
		out.ProofBytes = vs.ProofBytes
		out.RunsProbed = vs.RunsProbed
	}
	return out
}

// add folds another shard's counters into the aggregate: counters and
// current-level gauges sum, per-pipeline tuning gauges take the maximum.
// Enclave fields are NOT folded here — shards share one enclave, so the
// caller counts it once.
func (s *Stats) add(o Stats) {
	s.Shards += o.Shards
	s.Flushes += o.Flushes
	s.Compactions += o.Compactions
	s.BytesFlushed += o.BytesFlushed
	s.BytesCompacted += o.BytesCompacted
	s.RecordsDropped += o.RecordsDropped
	s.ManifestUpdates += o.ManifestUpdates
	s.DiskBytes += o.DiskBytes
	s.WALSyncs += o.WALSyncs
	s.GroupCommits += o.GroupCommits
	s.GroupedRecords += o.GroupedRecords
	s.WALTornRecords += o.WALTornRecords
	s.FlushStallNanos += o.FlushStallNanos
	s.CompactionStallNanos += o.CompactionStallNanos
	s.BackgroundCompactions += o.BackgroundCompactions
	s.PinnedRuns += o.PinnedRuns
	s.CompactionDebtBytes += o.CompactionDebtBytes
	for len(s.CompactionDebtByLevel) < len(o.CompactionDebtByLevel) {
		s.CompactionDebtByLevel = append(s.CompactionDebtByLevel, 0)
	}
	for i, d := range o.CompactionDebtByLevel {
		s.CompactionDebtByLevel[i] += d
	}
	s.ParallelCompactions += o.ParallelCompactions
	if o.CompactionWorkersBusy > s.CompactionWorkersBusy {
		s.CompactionWorkersBusy = o.CompactionWorkersBusy
	}
	s.SnapshotsOpen += o.SnapshotsOpen
	s.AsyncCommitsInFlight += o.AsyncCommitsInFlight
	if o.GroupCommitWindowNanos > s.GroupCommitWindowNanos {
		s.GroupCommitWindowNanos = o.GroupCommitWindowNanos
	}
	if o.FsyncEWMANanos > s.FsyncEWMANanos {
		s.FsyncEWMANanos = o.FsyncEWMANanos
	}
	s.VerifiedGets += o.VerifiedGets
	s.ProofBytes += o.ProofBytes
	s.RunsProbed += o.RunsProbed
}

// Stats returns current counters — aggregated across every shard on a
// sharded store. Fields not applicable to the store's mode are zero.
func (s *Store) Stats() Stats {
	kv := s.base()
	r, ok := kv.(*shard.Router)
	if !ok {
		out := statsOf(kv)
		s.replStats(&out, s.currentTailers())
		return out
	}
	var out Stats
	for i := 0; i < r.NumShards(); i++ {
		st := statsOf(r.Shard(i))
		if i == 0 {
			// The enclave is shared: count its activity once.
			out.PageFaults = st.PageFaults
			out.ECalls = st.ECalls
			out.OCalls = st.OCalls
			out.CopiedBytes = st.CopiedBytes
			out.ResidentPages = st.ResidentPages
			out.EnclaveBytes = st.EnclaveBytes
		}
		out.add(st)
	}
	s.replStats(&out, s.currentTailers())
	return out
}

// ShardStats returns the per-shard counter breakdown, in shard order. A
// single-instance store returns one entry (identical to Stats). Enclave
// fields repeat the shared enclave's totals in every entry.
func (s *Store) ShardStats() []Stats {
	kv := s.base()
	r, ok := kv.(*shard.Router)
	if !ok {
		one := statsOf(kv)
		s.replStats(&one, s.currentTailers())
		return []Stats{one}
	}
	tailers := s.currentTailers()
	rebootstraps := s.rebootstraps.Load()
	out := make([]Stats, r.NumShards())
	for i := range out {
		out[i] = statsOf(r.Shard(i))
		if cs, ok := r.Shard(i).(*core.Store); ok {
			out[i].ReplEpoch = cs.ReplEpoch()
		}
		out[i].ReplRebootstraps = rebootstraps
		if i < len(tailers) {
			out[i].ReplLagGroups, out[i].ReplLagBytes = tailers[i].Lag()
			out[i].ReplReconnects = tailers[i].Reconnects()
		}
	}
	s.replMu.Lock()
	for i, l := range s.leaders {
		if i < len(out) {
			out[i].FollowersConnected = uint64(l.Followers())
		}
	}
	s.replMu.Unlock()
	return out
}
