package elsm

import (
	"elsm/internal/core"
	"elsm/internal/lsm"
	"elsm/internal/sgx"
)

// Stats is a point-in-time snapshot of the store's engine and simulated-
// enclave activity, for observability and the benchmark harness.
type Stats struct {
	// Mode-independent engine counters.
	Flushes         uint64
	Compactions     uint64
	BytesFlushed    uint64
	BytesCompacted  uint64
	RecordsDropped  uint64
	ManifestUpdates uint64
	DiskBytes       int64

	// Group-commit pipeline counters. WALSyncs/GroupCommits stay far below
	// the committed-operation count when concurrent writers coalesce;
	// GroupedRecords/GroupCommits is the mean group size.
	WALSyncs       uint64
	GroupCommits   uint64
	GroupedRecords uint64
	// WALTornRecords counts records dropped at recovery because their
	// commit group never completed (crash mid-append).
	WALTornRecords uint64

	// Background-maintenance counters. FlushStallNanos is writer time lost
	// waiting for a lagging background flush; CompactionStallNanos is the
	// share of it attributable to a compaction occupying the worker;
	// BackgroundCompactions counts worker-scheduled level merges;
	// PinnedRuns is the current number of run pins (snapshot readers,
	// in-flight merges) beyond version membership.
	FlushStallNanos       uint64
	CompactionStallNanos  uint64
	BackgroundCompactions uint64
	PinnedRuns            uint64
	// Sessions v2 gauges. SnapshotsOpen counts open Snapshot sessions
	// (plus live iterators, which pin the same machinery);
	// AsyncCommitsInFlight counts CommitAsync batches acknowledged but not
	// yet durable (bounded by Options.MaxAsyncCommitBacklog).
	SnapshotsOpen        uint64
	AsyncCommitsInFlight uint64
	// GroupCommitWindowNanos is the resolved leader batching window (the
	// adaptive value when GroupCommitWindow = AutoGroupCommitWindow);
	// FsyncEWMANanos is the fsync-latency EWMA feeding it.
	GroupCommitWindowNanos uint64
	FsyncEWMANanos         uint64

	// Simulated SGX activity (zero for ModeUnsecured).
	PageFaults    uint64
	ECalls        uint64
	OCalls        uint64
	CopiedBytes   uint64
	ResidentPages int
	EnclaveBytes  int64

	// Verification work (ModeP2 only).
	VerifiedGets uint64
	ProofBytes   uint64
	RunsProbed   uint64
}

// engined is implemented by every store variant.
type engined interface {
	Engine() *lsm.Store
}

// enclaved is implemented by the enclave-hosted variants.
type enclaved interface {
	Enclave() *sgx.Enclave
}

// Stats returns current counters. Fields not applicable to the store's
// mode are zero.
func (s *Store) Stats() Stats {
	var out Stats
	if e, ok := s.kv.(engined); ok {
		es := e.Engine().Stats()
		out.Flushes = es.Flushes
		out.Compactions = es.Compactions
		out.BytesFlushed = es.BytesFlushed
		out.BytesCompacted = es.BytesCompacted
		out.RecordsDropped = es.RecordsDropped
		out.ManifestUpdates = es.ManifestUpdates
		out.DiskBytes = e.Engine().DiskBytes()
		out.WALSyncs = es.WALSyncs
		out.GroupCommits = es.GroupCommits
		out.GroupedRecords = es.GroupedRecords
		out.WALTornRecords = es.WALTornRecords
		out.FlushStallNanos = es.FlushStallNanos
		out.CompactionStallNanos = es.CompactionStallNanos
		out.BackgroundCompactions = es.BackgroundCompactions
		out.PinnedRuns = es.PinnedRuns
		out.SnapshotsOpen = es.SnapshotsOpen
		out.AsyncCommitsInFlight = es.AsyncCommitsInFlight
		out.GroupCommitWindowNanos = es.GroupCommitWindowNanos
		out.FsyncEWMANanos = es.FsyncEWMANanos
	}
	if e, ok := s.kv.(enclaved); ok {
		st := e.Enclave().Stats()
		out.PageFaults = st.PageFaults
		out.ECalls = st.ECalls
		out.OCalls = st.OCalls
		out.CopiedBytes = st.CopiedBytes
		out.ResidentPages = st.ResidentPages
		out.EnclaveBytes = st.AllocatedBytes
	}
	if p2, ok := s.kv.(*core.Store); ok {
		vs := p2.VerifyStatsSnapshot()
		out.VerifiedGets = vs.Gets
		out.ProofBytes = vs.ProofBytes
		out.RunsProbed = vs.RunsProbed
	}
	return out
}
