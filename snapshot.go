package elsm

import (
	"context"

	"elsm/internal/core"
	"elsm/internal/record"
)

// Snapshot is a consistent verified read session: it captures the store's
// current trusted digest snapshot and pins its runs and memtable view, so
// every read through it — point lookups, historical lookups, streaming
// iterators, materialized scans — observes the SAME state, byte for byte,
// no matter how many concurrent writes, flushes, compactions or WAL
// rotations happen underneath. On authenticated modes every snapshot read
// is verified for integrity, freshness and completeness exactly like the
// live paths, against the captured digest forest.
//
// A snapshot holds disk space (runs replaced by compaction survive until
// release) and an entry in Stats.SnapshotsOpen; Close releases the pins and
// is idempotent. Iterators opened from a snapshot keep their own pins until
// closed, so closing the snapshot mid-iteration is safe.
//
// Snapshots replace the ad-hoc "remember a timestamp and juggle GetAt"
// pattern: Ts exposes the captured trusted timestamp, and GetAt/IterAt
// still accept historical timestamps within the snapshot (clamped to Ts).
type Snapshot struct {
	s     *Store
	inner core.Snapshot
}

// Snapshot captures the current verified state as a read session. The
// returned snapshot observes every commit acknowledged as durable before
// the call.
func (s *Store) Snapshot() (*Snapshot, error) {
	inner, err := s.base().Snapshot()
	if err != nil {
		return nil, err
	}
	return &Snapshot{s: s, inner: inner}, nil
}

// Ts returns the snapshot's trusted timestamp: the commit timestamp of the
// newest write visible in it.
func (sn *Snapshot) Ts() uint64 { return sn.inner.Ts() }

// Get returns the latest value of key as of the snapshot, verified.
func (sn *Snapshot) Get(key []byte) (Result, error) {
	return sn.GetAtCtx(nil, key, record.MaxTs)
}

// GetCtx is Get with cancellation.
func (sn *Snapshot) GetCtx(ctx context.Context, key []byte) (Result, error) {
	return sn.GetAtCtx(ctx, key, record.MaxTs)
}

// GetAt returns the newest value with timestamp ≤ tsq as of the snapshot
// (tsq is clamped to Ts).
func (sn *Snapshot) GetAt(key []byte, tsq uint64) (Result, error) {
	return sn.GetAtCtx(nil, key, tsq)
}

// GetAtCtx is GetAt with cancellation.
func (sn *Snapshot) GetAtCtx(ctx context.Context, key []byte, tsq uint64) (Result, error) {
	if enc := sn.s.enc; enc != nil {
		ek, ok, err := enc.lookupKey(key)
		if err != nil {
			return Result{}, err
		}
		if !ok {
			return Result{}, nil
		}
		res, err := sn.inner.GetAt(ctx, ek, tsq)
		if err != nil || !res.Found {
			return Result{}, err
		}
		return enc.openResult(res)
	}
	return sn.inner.GetAt(ctx, key, tsq)
}

// Iter streams the latest verified value of every key in [start, end] as
// of the snapshot.
func (sn *Snapshot) Iter(start, end []byte) *Iterator {
	return sn.IterAtCtx(nil, start, end, record.MaxTs)
}

// IterCtx is Iter with cancellation.
func (sn *Snapshot) IterCtx(ctx context.Context, start, end []byte) *Iterator {
	return sn.IterAtCtx(ctx, start, end, record.MaxTs)
}

// IterAt is Iter at a historical timestamp within the snapshot.
func (sn *Snapshot) IterAt(start, end []byte, tsq uint64) *Iterator {
	return sn.IterAtCtx(nil, start, end, tsq)
}

// IterAtCtx is IterAt with cancellation.
func (sn *Snapshot) IterAtCtx(ctx context.Context, start, end []byte, tsq uint64) *Iterator {
	if enc := sn.s.enc; enc != nil {
		estart, eend, err := enc.rangeBounds(start, end)
		if err != nil {
			return &Iterator{err: err}
		}
		return &Iterator{
			inner: sn.inner.IterAt(ctx, estart, eend, tsq),
			enc:   enc,
			start: append([]byte(nil), start...),
			end:   append([]byte(nil), end...),
		}
	}
	return &Iterator{inner: sn.inner.IterAt(ctx, start, end, tsq)}
}

// Scan materializes the latest verified value of every key in [start, end]
// as of the snapshot.
func (sn *Snapshot) Scan(start, end []byte) ([]Result, error) {
	return sn.ScanCtx(nil, start, end)
}

// ScanCtx is Scan with cancellation.
func (sn *Snapshot) ScanCtx(ctx context.Context, start, end []byte) ([]Result, error) {
	it := sn.IterCtx(ctx, start, end)
	var out []Result
	for it.Next() {
		out = append(out, it.Result())
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// Close releases the snapshot's pins. Idempotent.
func (sn *Snapshot) Close() error { return sn.inner.Close() }
