//go:build elsm_internal_api

package elsm

import "elsm/internal/core"

// Internal returns the underlying core store — the shard router when
// Shards > 1, the single instance otherwise.
//
// Deprecated: the supported surfaces are Stats/ShardStats for metrics,
// Flush/WaitMaintenance for maintenance fencing, and the public
// Store/Batch/Iterator/Snapshot API for data access; every former caller
// has been migrated to them. This shim now requires the elsm_internal_api
// build tag — the last escape hatch for out-of-tree integrations that
// drive core.KV directly; new code must not depend on it.
func (s *Store) Internal() core.KV { return s.base() }
