package elsm

import (
	"fmt"
	"testing"

	"elsm/internal/sgx"
	"elsm/internal/vfs"
	"elsm/internal/ycsb"
)

func newTestFS() vfs.FS { return vfs.NewMem() }

func newTestTrust(t *testing.T) (*sgx.Platform, *sgx.MonotonicCounter) {
	t.Helper()
	plat, err := sgx.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	return plat, sgx.NewMonotonicCounter()
}

// TestYCSBWorkloadsAllModes drives the six standard YCSB workloads against
// every store design: the full read/update/insert/scan/read-modify-write
// surface must execute without verification failures through flushes and
// compactions.
func TestYCSBWorkloadsAllModes(t *testing.T) {
	const loaded = 2000
	workloads := []ycsb.Workload{
		ycsb.WorkloadA(), ycsb.WorkloadB(), ycsb.WorkloadC(),
		ycsb.WorkloadD(), ycsb.WorkloadE(), ycsb.WorkloadF(),
	}
	for _, mode := range []Mode{ModeP2, ModeP1, ModeUnsecured} {
		for _, wl := range workloads {
			t.Run(fmt.Sprintf("%s/workload%s", mode, wl.Name), func(t *testing.T) {
				opts := testOptions(mode)
				s, err := Open(opts)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				bulkLoad(t, s, ycsb.GenRecords(loaded, 64))
				wl.ValueSize = 64
				r := ycsb.NewRunner(storeDB{s}, wl, loaded, 99)
				st, err := r.RunOps(800)
				if err != nil {
					t.Fatalf("workload %s on %s: %v", wl.Name, mode, err)
				}
				if st.Errors != 0 {
					t.Fatalf("workload %s on %s: %d op errors", wl.Name, mode, st.Errors)
				}
			})
		}
	}
}

// TestConcurrentYCSBOnVerifiedStore drives the multi-threaded YCSB runner
// against eLSM-P2: concurrent verified reads and authenticated writes with
// live flushes/compactions must complete without a single verification
// failure (§5.5.2 "Multi-threading").
func TestConcurrentYCSBOnVerifiedStore(t *testing.T) {
	s, err := Open(testOptions(ModeP2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 1500
	bulkLoad(t, s, ycsb.GenRecords(n, 64))
	wl := ycsb.WorkloadA()
	wl.ValueSize = 64
	st, err := ycsb.RunConcurrent(storeDB{s}, wl, n, 4, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 0 {
		t.Fatalf("%d verification/op errors under concurrency", st.Errors)
	}
	if st.Ops != 2000 {
		t.Fatalf("ops = %d", st.Ops)
	}
}

// TestMixedWriteThenScanConsistency interleaves writes and verified scans,
// checking scans reflect all completed writes (read-your-writes through
// the verified path).
func TestMixedWriteThenScanConsistency(t *testing.T) {
	s, err := Open(testOptions(ModeP2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			key := fmt.Sprintf("r%02d-key%03d", round, i)
			if _, err := s.Put([]byte(key), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		out, err := s.Scan([]byte(fmt.Sprintf("r%02d-", round)), []byte(fmt.Sprintf("r%02d-z", round)))
		if err != nil {
			t.Fatalf("round %d scan: %v", round, err)
		}
		if len(out) != 100 {
			t.Fatalf("round %d scan saw %d of 100 fresh writes", round, len(out))
		}
	}
}

// TestReopenLoop exercises repeated clean close/reopen cycles with the
// same platform and counter (a long-lived service restarting).
func TestReopenLoop(t *testing.T) {
	opts := testOptions(ModeP2)
	opts.FS = newTestFS()
	plat, counter := newTestTrust(t)
	opts.Platform = plat
	opts.Counter = counter

	total := 0
	for cycle := 0; cycle < 5; cycle++ {
		s, err := Open(opts)
		if err != nil {
			t.Fatalf("cycle %d open: %v", cycle, err)
		}
		for i := 0; i < 300; i++ {
			key := fmt.Sprintf("c%d-k%03d", cycle, i)
			if _, err := s.Put([]byte(key), []byte("v")); err != nil {
				t.Fatal(err)
			}
			total++
		}
		// All data from every earlier cycle must still verify.
		for c := 0; c <= cycle; c++ {
			res, err := s.Get([]byte(fmt.Sprintf("c%d-k000", c)))
			if err != nil || !res.Found {
				t.Fatalf("cycle %d: key from cycle %d: %+v err=%v", cycle, c, res, err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("cycle %d close: %v", cycle, err)
		}
	}
}
