// Tests for the public sharded-store surface: hash-partitioned routing
// behind Options.Shards, merged verified scans against a single-shard
// oracle, cross-shard batch and snapshot semantics, per-shard roots of
// trust across reopen, and stats aggregation.
package elsm

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"elsm/internal/sgx"
)

// shardedOptions is the small-geometry config for sharded tests.
func shardedOptions(mode Mode, shards int) Options {
	opts := testOptions(mode)
	opts.Shards = shards
	return opts
}

func TestOpenValidatesShardOptions(t *testing.T) {
	bad := []struct {
		opts    Options
		wantMsg string
	}{
		{Options{Shards: -1}, "Shards must be ≥ 1"},
		{Options{Shards: 3}, "Shards must be a power of two"},
		{Options{Shards: 6}, "Shards must be a power of two"},
		{Options{Shards: 2, ShardCounters: []*sgx.MonotonicCounter{sgx.NewMonotonicCounter()}}, "ShardCounters carries 1 counters for 2 shards"},
		{Options{Shards: 2, Counter: sgx.NewMonotonicCounter()}, "Counter is single-instance"},
		{Options{Counter: sgx.NewMonotonicCounter(), ShardCounters: []*sgx.MonotonicCounter{sgx.NewMonotonicCounter()}}, "mutually exclusive"},
	}
	for i, tc := range bad {
		_, err := Open(tc.opts)
		if err == nil {
			t.Fatalf("bad option set %d accepted: %+v", i, tc.opts)
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Fatalf("bad option set %d: error %q does not name the offence (want %q)", i, err, tc.wantMsg)
		}
	}
	// Shards: 0 and Shards: 1 are both the single-instance store.
	for _, n := range []int{0, 1} {
		s, err := Open(Options{Shards: n})
		if err != nil {
			t.Fatalf("Shards=%d rejected: %v", n, err)
		}
		if s.Shards() != 1 {
			t.Fatalf("Shards=%d opened %d partitions", n, s.Shards())
		}
		s.Close()
	}
}

// TestShardedMergedScanMatchesOracle is the acceptance oracle: the same
// operation sequence applied to a 4-shard store and a single-instance store
// must produce byte-identical, verification-passing merged scans — in all
// three modes. (Trusted timestamps are per-shard and excluded: only
// keys/values/found are compared.)
func TestShardedMergedScanMatchesOracle(t *testing.T) {
	for _, mode := range []Mode{ModeP2, ModeP1, ModeUnsecured} {
		t.Run(mode.String(), func(t *testing.T) {
			sharded, err := Open(shardedOptions(mode, 4))
			if err != nil {
				t.Fatal(err)
			}
			defer sharded.Close()
			oracle, err := Open(shardedOptions(mode, 1))
			if err != nil {
				t.Fatal(err)
			}
			defer oracle.Close()

			apply := func(s *Store) {
				t.Helper()
				for i := 0; i < 400; i++ {
					if _, err := s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("v1-%d", i))); err != nil {
						t.Fatal(err)
					}
				}
				// Overwrites, deletes and batches, with flushes in between
				// so both stores serve from disk runs AND memtables.
				if err := s.Flush(); err != nil {
					t.Fatal(err)
				}
				b := s.NewBatch()
				for i := 100; i < 200; i++ {
					b.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("v2-%d", i)))
				}
				for i := 300; i < 330; i++ {
					b.Delete([]byte(fmt.Sprintf("key%04d", i)))
				}
				if _, err := b.Commit(); err != nil {
					t.Fatal(err)
				}
				for i := 350; i < 360; i++ {
					if _, err := s.Delete([]byte(fmt.Sprintf("key%04d", i))); err != nil {
						t.Fatal(err)
					}
				}
			}
			apply(sharded)
			apply(oracle)

			want, err := oracle.Scan([]byte("key"), []byte("kez"))
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.Scan([]byte("key"), []byte("kez"))
			if err != nil {
				t.Fatalf("merged verified scan failed: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("merged scan: %d results, oracle %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) || got[i].Found != want[i].Found {
					t.Fatalf("merged scan diverged at %d: %q/%q vs oracle %q/%q",
						i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
				}
			}

			// The streaming iterator agrees with the materialized scan.
			it := sharded.Iter([]byte("key"), []byte("kez"))
			n := 0
			for it.Next() {
				if !bytes.Equal(it.Key(), want[n].Key) || !bytes.Equal(it.Value(), want[n].Value) {
					t.Fatalf("merged stream diverged at %d: %q/%q", n, it.Key(), it.Value())
				}
				n++
			}
			if err := it.Close(); err != nil {
				t.Fatal(err)
			}
			if n != len(want) {
				t.Fatalf("merged stream yielded %d of %d", n, len(want))
			}

			// Point reads agree too (spot check, including deleted keys).
			for i := 0; i < 400; i += 17 {
				key := []byte(fmt.Sprintf("key%04d", i))
				a, err := sharded.Get(key)
				if err != nil {
					t.Fatal(err)
				}
				b, err := oracle.Get(key)
				if err != nil {
					t.Fatal(err)
				}
				if a.Found != b.Found || !bytes.Equal(a.Value, b.Value) {
					t.Fatalf("point read %q diverged: %q/%v vs %q/%v", key, a.Value, a.Found, b.Value, b.Found)
				}
			}
		})
	}
}

// TestShardedSnapshotAtomicAcrossShards: a router snapshot never observes
// half of a cross-shard batch, and stays repeatable under churn.
func TestShardedSnapshotAtomicAcrossShards(t *testing.T) {
	s, err := Open(shardedOptions(ModeP2, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Writer: cross-shard batches where every key of batch i carries value
	// i — a snapshot that sees two different values tore a batch.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			b := s.NewBatch()
			for j := 0; j < 16; j++ {
				b.Put([]byte(fmt.Sprintf("atomic%02d", j)), []byte(fmt.Sprintf("gen%06d", i)))
			}
			if _, err := b.CommitCtx(nil); err != nil {
				done <- err
				return
			}
			select {
			case <-ctx.Done():
				done <- nil
				return
			default:
			}
		}
	}()

	for round := 0; round < 30; round++ {
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		res, err := snap.Scan([]byte("atomic"), []byte("atomid"))
		if err != nil {
			t.Fatal(err)
		}
		gens := map[string]bool{}
		for _, r := range res {
			gens[string(r.Value)] = true
		}
		if len(res) > 0 && len(gens) != 1 {
			t.Fatalf("snapshot observed a torn cross-shard batch: generations %v", gens)
		}
		// Repeatable.
		res2, err := snap.Scan([]byte("atomic"), []byte("atomid"))
		if err != nil {
			t.Fatal(err)
		}
		if len(res2) != len(res) {
			t.Fatalf("snapshot not repeatable: %d vs %d", len(res), len(res2))
		}
		snap.Close()
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestShardedPersistenceAcrossReopen: a dir-backed 4-shard store reopens
// from its per-shard directories with per-shard counters and serves
// verified reads; reopening with the wrong shard count is detectably wrong
// (keys route to shards that cannot verify them as present).
func TestShardedPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	platform, err := sgx.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	counters := []*sgx.MonotonicCounter{
		sgx.NewMonotonicCounter(), sgx.NewMonotonicCounter(),
		sgx.NewMonotonicCounter(), sgx.NewMonotonicCounter(),
	}
	opts := Options{Dir: dir, Shards: 4, Platform: platform, ShardCounters: counters}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(opts)
	if err != nil {
		t.Fatalf("sharded reopen: %v", err)
	}
	defer s2.Close()
	for i := 0; i < 200; i += 13 {
		res, err := s2.Get([]byte(fmt.Sprintf("key%04d", i)))
		if err != nil || !res.Found || string(res.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after reopen key%04d: %+v err=%v", i, res, err)
		}
	}
	scan, err := s2.Scan([]byte("key"), []byte("kez"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scan) != 200 {
		t.Fatalf("scan after reopen: %d results, want 200", len(scan))
	}
}

// TestShardedStatsAggregation: the aggregate view sums per-shard pipelines,
// the per-shard view exposes the topology, and the gauges move.
func TestShardedStatsAggregation(t *testing.T) {
	s, err := Open(shardedOptions(ModeP2, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 200; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}

	agg := s.Stats()
	if agg.Shards != 4 {
		t.Fatalf("aggregate Shards = %d, want 4", agg.Shards)
	}
	per := s.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats returned %d entries", len(per))
	}
	var sumSyncs, sumFlushes uint64
	activeShards := 0
	for i, ss := range per {
		if ss.Shards != 1 {
			t.Fatalf("per-shard entry %d covers %d shards", i, ss.Shards)
		}
		if ss.WALSyncs > 0 {
			activeShards++
		}
		sumSyncs += ss.WALSyncs
		sumFlushes += ss.Flushes
	}
	if activeShards < 2 {
		t.Fatalf("writes did not spread: only %d of 4 shards synced (per-shard %v)", activeShards, per)
	}
	if agg.WALSyncs != sumSyncs {
		t.Fatalf("aggregate WALSyncs %d != per-shard sum %d", agg.WALSyncs, sumSyncs)
	}
	if agg.Flushes != sumFlushes || agg.Flushes == 0 {
		t.Fatalf("aggregate Flushes %d vs sum %d", agg.Flushes, sumFlushes)
	}
	if agg.VerifiedGets != 0 {
		t.Fatal("no gets issued yet VerifiedGets > 0")
	}
	if _, err := s.Get([]byte("key0001")); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().VerifiedGets; got == 0 {
		t.Fatal("VerifiedGets did not move after a sharded get")
	}

	// A router snapshot pins every shard.
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().SnapshotsOpen; got != 4 {
		t.Fatalf("SnapshotsOpen = %d with one router snapshot over 4 shards", got)
	}
	snap.Close()
	if got := s.Stats().SnapshotsOpen; got != 0 {
		t.Fatalf("SnapshotsOpen = %d after close", got)
	}
}

// TestShardedAsyncCommitAndSync: CommitAsync acknowledgment and the Sync
// barrier across shards, plus the aggregate future outcome.
func TestShardedAsyncCommitAndSync(t *testing.T) {
	s, err := Open(shardedOptions(ModeP2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	var futs []*CommitFuture
	for i := 0; i < 20; i++ {
		b := s.NewBatch()
		for j := 0; j < 8; j++ {
			b.Put([]byte(fmt.Sprintf("async%03d-%d", i, j)), []byte("v"))
		}
		fut, err := b.CommitAsync(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fut.Ts(ctx); err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	if err := s.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	for i, fut := range futs {
		if _, err := fut.Wait(ctx); err != nil {
			t.Fatalf("future %d unresolved after Sync: %v", i, err)
		}
	}
	scan, err := s.Scan([]byte("async"), []byte("asynd"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scan) != 160 {
		t.Fatalf("scan after async storm: %d results, want 160", len(scan))
	}
}

// TestShardedEncryption: the confidentiality layer composes with sharding
// (encrypted keys route by ciphertext hash — stable, since OPE is
// deterministic per store).
func TestShardedEncryption(t *testing.T) {
	opts := shardedOptions(ModeP2, 2)
	opts.Encryption = &EncryptionOptions{Mode: EncryptRange}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 60; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("user%03d", i)), []byte(fmt.Sprintf("secret%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Scan([]byte("user010"), []byte("user020"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 11 {
		t.Fatalf("encrypted sharded scan: %d results, want 11", len(res))
	}
	for _, r := range res {
		var idx int
		if _, err := fmt.Sscanf(string(r.Key), "user%03d", &idx); err != nil {
			t.Fatalf("bad decrypted key %q", r.Key)
		}
		if want := fmt.Sprintf("secret%d", idx); string(r.Value) != want {
			t.Fatalf("decrypted %q = %q, want %q", r.Key, r.Value, want)
		}
	}
}
