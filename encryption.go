package elsm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"elsm/internal/crypto"
)

// EncryptionMode selects how data keys are encrypted (§5.6.2).
type EncryptionMode int

const (
	// EncryptPoint uses deterministic encryption for keys: equal
	// plaintexts map to equal ciphertexts, so exact-match GET works over
	// ciphertext. Range scans are unsupported in this mode.
	EncryptPoint EncryptionMode = iota + 1
	// EncryptRange additionally maintains a mutable order-preserving
	// encoding (mOPE) of keys inside the enclave, enabling range scans
	// over ciphertext.
	EncryptRange
)

// EncryptionOptions configures the confidentiality layer. Values are always
// AES-GCM encrypted; keys per the selected mode.
type EncryptionOptions struct {
	Mode EncryptionMode
	// Key is the master key; zero means generate a fresh one (data is
	// then unreadable after restart — supply a key for persistence).
	Key crypto.MasterKey
}

// Encryption-layer errors.
var (
	// ErrScanUnsupported is returned by Scan under EncryptPoint.
	ErrScanUnsupported = errors.New("elsm: range scans require EncryptRange mode")
	// ErrRebalanceNeeded re-exports the mOPE exhaustion error.
	ErrRebalanceNeeded = crypto.ErrRebalanceNeeded
)

// encLayer performs key/value encryption at the public API boundary. All
// cryptographic state (DE keys, the OPE table) logically lives inside the
// enclave; the stored keys and values are ciphertext only.
type encLayer struct {
	mode EncryptionMode
	de   *crypto.DeterministicEncrypter
	ve   *crypto.ValueEncrypter
	ope  *crypto.OPE
}

func newEncLayer(opts EncryptionOptions) (*encLayer, error) {
	if opts.Mode == 0 {
		opts.Mode = EncryptPoint
	}
	var zero crypto.MasterKey
	if opts.Key == zero {
		k, err := crypto.NewMasterKey()
		if err != nil {
			return nil, err
		}
		opts.Key = k
	}
	ve, err := crypto.NewValue(opts.Key)
	if err != nil {
		return nil, err
	}
	l := &encLayer{
		mode: opts.Mode,
		de:   crypto.NewDeterministic(opts.Key),
		ve:   ve,
	}
	if opts.Mode == EncryptRange {
		l.ope = crypto.NewOPE()
	}
	return l, nil
}

// sealKey maps a plaintext key to its stored form, registering it with the
// OPE table in range mode.
func (l *encLayer) sealKey(key []byte) ([]byte, error) {
	if l.mode == EncryptRange {
		code, err := l.ope.Encode(key)
		if err != nil {
			return nil, fmt.Errorf("elsm: OPE encode: %w", err)
		}
		return opeKeyBytes(code), nil
	}
	return l.de.Encrypt(key), nil
}

// lookupKey maps a plaintext key to its stored form without registering
// new keys; ok=false means the key was never written.
func (l *encLayer) lookupKey(key []byte) ([]byte, bool, error) {
	if l.mode == EncryptRange {
		code, ok := l.ope.Lookup(key)
		if !ok {
			return nil, false, nil
		}
		return opeKeyBytes(code), true, nil
	}
	return l.de.Encrypt(key), true, nil
}

// sealRecord encrypts a record: the value envelope carries the encrypted
// plaintext key (so scans can recover it) followed by the value.
func (l *encLayer) sealRecord(key, value []byte) ([]byte, []byte, error) {
	ek, err := l.sealKey(key)
	if err != nil {
		return nil, nil, err
	}
	envelope := make([]byte, 0, 4+len(key)+len(value))
	envelope = binary.BigEndian.AppendUint32(envelope, uint32(len(key)))
	envelope = append(envelope, key...)
	envelope = append(envelope, value...)
	ev, err := l.ve.Encrypt(envelope)
	if err != nil {
		return nil, nil, err
	}
	return ek, ev, nil
}

// openResult decrypts a stored result back to plaintext key and value.
func (l *encLayer) openResult(res Result) (Result, error) {
	envelope, err := l.ve.Decrypt(res.Value)
	if err != nil {
		return Result{}, fmt.Errorf("elsm: value decrypt: %w", err)
	}
	if len(envelope) < 4 {
		return Result{}, fmt.Errorf("elsm: malformed value envelope")
	}
	klen := int(binary.BigEndian.Uint32(envelope[:4]))
	if 4+klen > len(envelope) {
		return Result{}, fmt.Errorf("elsm: malformed value envelope")
	}
	return Result{
		Key:   envelope[4 : 4+klen],
		Value: envelope[4+klen:],
		Ts:    res.Ts,
		Found: true,
	}, nil
}

// rangeBounds translates a plaintext range to stored-key bounds.
func (l *encLayer) rangeBounds(start, end []byte) ([]byte, []byte, error) {
	if l.mode != EncryptRange {
		return nil, nil, ErrScanUnsupported
	}
	lo, hi := l.ope.Bounds(start, end)
	return opeKeyBytes(lo), opeKeyBytes(hi), nil
}

func opeKeyBytes(code uint64) []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, code)
	return out
}
