package elsm

import (
	"fmt"
	"testing"
	"time"

	"elsm/internal/vfs"
)

func TestStatsSnapshot(t *testing.T) {
	s, err := Open(testOptions(ModeP2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 1000; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("key%04d", i*7))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatal("flushes not counted")
	}
	if st.DiskBytes == 0 {
		t.Fatal("disk bytes zero after flush")
	}
	if st.ECalls == 0 || st.OCalls == 0 {
		t.Fatalf("boundary crossings not counted: %+v", st)
	}
	if st.VerifiedGets == 0 {
		t.Fatal("verified gets not counted")
	}
	if st.RunsProbed == 0 || st.ProofBytes == 0 {
		t.Fatalf("verification work not counted: %+v", st)
	}
}

// TestStatsAdaptiveCommitWindow checks the public plumbing of the
// adaptive group-commit window: with GroupCommitWindow =
// AutoGroupCommitWindow on fsync-bound storage, Stats must report a
// non-zero resolved window derived from the fsync-latency EWMA.
func TestStatsAdaptiveCommitWindow(t *testing.T) {
	opts := testOptions(ModeP2)
	opts.FS = vfs.NewSlowSync(vfs.NewMem(), 300*time.Microsecond)
	opts.MemtableSize = 1 << 20 // keep flushes out of the picture
	opts.GroupCommitWindow = AutoGroupCommitWindow
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 12; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.FsyncEWMANanos == 0 {
		t.Fatal("fsync EWMA not plumbed through Stats")
	}
	if st.GroupCommitWindowNanos == 0 {
		t.Fatal("resolved adaptive window not plumbed through Stats")
	}
}

func TestStatsUnsecuredMode(t *testing.T) {
	s, err := Open(testOptions(ModeUnsecured))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v"))
	}
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatal("unsecured flushes not counted")
	}
	if st.VerifiedGets != 0 {
		t.Fatal("unsecured store reported verification work")
	}
}
