package elsm

import (
	"fmt"
	"testing"
)

func TestStatsSnapshot(t *testing.T) {
	s, err := Open(testOptions(ModeP2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 1000; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("key%04d", i*7))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatal("flushes not counted")
	}
	if st.DiskBytes == 0 {
		t.Fatal("disk bytes zero after flush")
	}
	if st.ECalls == 0 || st.OCalls == 0 {
		t.Fatalf("boundary crossings not counted: %+v", st)
	}
	if st.VerifiedGets == 0 {
		t.Fatal("verified gets not counted")
	}
	if st.RunsProbed == 0 || st.ProofBytes == 0 {
		t.Fatalf("verification work not counted: %+v", st)
	}
}

func TestStatsUnsecuredMode(t *testing.T) {
	s, err := Open(testOptions(ModeUnsecured))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v"))
	}
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatal("unsecured flushes not counted")
	}
	if st.VerifiedGets != 0 {
		t.Fatal("unsecured store reported verification work")
	}
}
