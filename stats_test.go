package elsm

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"elsm/internal/vfs"
)

func TestStatsSnapshot(t *testing.T) {
	s, err := Open(testOptions(ModeP2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 1000; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("key%04d", i*7))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatal("flushes not counted")
	}
	if st.DiskBytes == 0 {
		t.Fatal("disk bytes zero after flush")
	}
	if st.ECalls == 0 || st.OCalls == 0 {
		t.Fatalf("boundary crossings not counted: %+v", st)
	}
	if st.VerifiedGets == 0 {
		t.Fatal("verified gets not counted")
	}
	if st.RunsProbed == 0 || st.ProofBytes == 0 {
		t.Fatalf("verification work not counted: %+v", st)
	}
}

// TestStatsAdaptiveCommitWindow checks the public plumbing of the
// adaptive group-commit window: with GroupCommitWindow =
// AutoGroupCommitWindow on fsync-bound storage, Stats must report a
// non-zero resolved window derived from the fsync-latency EWMA.
func TestStatsAdaptiveCommitWindow(t *testing.T) {
	opts := testOptions(ModeP2)
	opts.FS = vfs.NewSlowSync(vfs.NewMem(), 300*time.Microsecond)
	opts.MemtableSize = 1 << 20 // keep flushes out of the picture
	opts.GroupCommitWindow = AutoGroupCommitWindow
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 12; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.FsyncEWMANanos == 0 {
		t.Fatal("fsync EWMA not plumbed through Stats")
	}
	if st.GroupCommitWindowNanos == 0 {
		t.Fatal("resolved adaptive window not plumbed through Stats")
	}
}

// statsFoldRules classifies EVERY Stats field by its documented
// shard-aggregation rule. TestStatsShardFold walks the struct by
// reflection against this table, so adding a Stats field without deciding
// its fold semantics fails the test rather than silently mis-aggregating.
var statsFoldRules = map[string]string{
	// Counters and current-level gauges: sum across shards.
	"Shards": "sum", "Flushes": "sum", "Compactions": "sum",
	"BytesFlushed": "sum", "BytesCompacted": "sum", "RecordsDropped": "sum",
	"ManifestUpdates": "sum", "DiskBytes": "sum", "WALSyncs": "sum",
	"GroupCommits": "sum", "GroupedRecords": "sum", "WALTornRecords": "sum",
	"FlushStallNanos": "sum", "CompactionStallNanos": "sum",
	"BackgroundCompactions": "sum", "PinnedRuns": "sum",
	"CompactionDebtBytes": "sum", "ParallelCompactions": "sum",
	"SnapshotsOpen": "sum", "AsyncCommitsInFlight": "sum",
	"VerifiedGets": "sum", "ProofBytes": "sum", "RunsProbed": "sum",
	"ReplLagGroups": "sum", "ReplLagBytes": "sum",
	"FollowersConnected": "sum", "ReplReconnects": "sum",
	// Per-pipeline tuning gauges: the maximum across shards.
	"CompactionWorkersBusy": "max", "GroupCommitWindowNanos": "max",
	"FsyncEWMANanos": "max",
	// The enclave is shared by every shard (per-shard entries repeat its
	// totals); whole-store replication state likewise: counted once.
	"PageFaults": "once", "ECalls": "once", "OCalls": "once",
	"CopiedBytes": "once", "ResidentPages": "once", "EnclaveBytes": "once",
	"ReplEpoch": "once", "ReplRebootstraps": "once",
	// Element-wise sum.
	"CompactionDebtByLevel": "sum-by-level",
}

// TestStatsShardFold is the aggregation property test: on a quiescent
// sharded store, Stats() must equal the documented fold of ShardStats().
func TestStatsShardFold(t *testing.T) {
	opts := testOptions(ModeP2)
	opts.Shards = 4
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 600; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("key%04d", i*13))); err != nil {
			t.Fatal(err)
		}
	}
	// Quiesce: durability barrier, then drain background maintenance, so
	// both snapshots below observe the same frozen counters.
	if err := s.Sync(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	shards := s.ShardStats()
	agg := s.Stats()
	if len(shards) != 4 {
		t.Fatalf("ShardStats returned %d entries, want 4", len(shards))
	}

	num := func(v reflect.Value) int64 {
		switch v.Kind() {
		case reflect.Uint64:
			return int64(v.Uint())
		case reflect.Int, reflect.Int64:
			return v.Int()
		}
		t.Fatalf("unhandled Stats field kind %v", v.Kind())
		return 0
	}
	av := reflect.ValueOf(agg)
	tp := av.Type()
	for i := 0; i < tp.NumField(); i++ {
		name := tp.Field(i).Name
		rule, ok := statsFoldRules[name]
		if !ok {
			t.Fatalf("Stats field %s has no fold rule: classify it in statsFoldRules (and stats.go's add)", name)
		}
		got := av.Field(i)
		switch rule {
		case "sum":
			var want int64
			for _, ss := range shards {
				want += num(reflect.ValueOf(ss).Field(i))
			}
			if num(got) != want {
				t.Errorf("%s: aggregate %d != shard sum %d", name, num(got), want)
			}
		case "max":
			var want int64
			for _, ss := range shards {
				if v := num(reflect.ValueOf(ss).Field(i)); v > want {
					want = v
				}
			}
			if num(got) != want {
				t.Errorf("%s: aggregate %d != shard max %d", name, num(got), want)
			}
		case "once":
			want := num(reflect.ValueOf(shards[0]).Field(i))
			if num(got) != want {
				t.Errorf("%s: aggregate %d != shard 0's %d (shared, counted once)", name, num(got), want)
			}
		case "sum-by-level":
			var want []uint64
			for _, ss := range shards {
				for len(want) < len(ss.CompactionDebtByLevel) {
					want = append(want, 0)
				}
				for l, d := range ss.CompactionDebtByLevel {
					want[l] += d
				}
			}
			for l := 0; l < len(want) || l < len(agg.CompactionDebtByLevel); l++ {
				var w, g uint64
				if l < len(want) {
					w = want[l]
				}
				if l < len(agg.CompactionDebtByLevel) {
					g = agg.CompactionDebtByLevel[l]
				}
				if w != g {
					t.Errorf("CompactionDebtByLevel[%d]: aggregate %d != shard sum %d", l, g, w)
				}
			}
		default:
			t.Fatalf("unknown fold rule %q for %s", rule, name)
		}
	}
}

func TestStatsUnsecuredMode(t *testing.T) {
	s, err := Open(testOptions(ModeUnsecured))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v"))
	}
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatal("unsecured flushes not counted")
	}
	if st.VerifiedGets != 0 {
		t.Fatal("unsecured store reported verification work")
	}
}
