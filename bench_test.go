// Per-operation microbenchmarks of the three store designs (functional
// cost, zero hardware model unless stated): these isolate the software
// overhead of verification itself — proof decode, Merkle path recompute,
// chain checks — on top of the raw engine. The paper-figure benchmarks
// live in figures_bench_test.go.
package elsm

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"elsm/internal/core"
	"elsm/internal/record"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
	"elsm/internal/ycsb"
)

// ---------------------------------------------------------------------------
// Per-operation microbenchmarks (functional cost, zero hardware model):
// these isolate the software overhead of verification itself — proof
// decode, Merkle path recompute, chain checks — on top of the raw engine.

func benchStore(b *testing.B, mode Mode) *Store {
	b.Helper()
	opts := Options{
		Mode:          mode,
		MemtableSize:  256 << 10,
		TableFileSize: 128 << 10,
		LevelBase:     512 << 10,
		CacheSize:     4 << 20,
	}
	if mode != ModeP1 {
		opts.MmapReads = true
		opts.CacheSize = 0
	}
	s, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

func loadStore(b *testing.B, s *Store, n int) {
	b.Helper()
	bulkLoad(b, s, ycsb.GenRecords(n, ycsb.DefaultValueSize))
}

func benchmarkGet(b *testing.B, mode Mode) {
	s := benchStore(b, mode)
	const n = 50_000
	loadStore(b, s, n)
	ch := ycsb.NewKeyChooser(ycsb.Uniform, n, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Get(ycsb.Key(ch.Next()))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("loaded key missing")
		}
	}
}

func BenchmarkGetP2Verified(b *testing.B) { benchmarkGet(b, ModeP2) }
func BenchmarkGetP1(b *testing.B)         { benchmarkGet(b, ModeP1) }
func BenchmarkGetUnsecured(b *testing.B)  { benchmarkGet(b, ModeUnsecured) }

func benchmarkPut(b *testing.B, mode Mode) {
	s := benchStore(b, mode)
	val := ycsb.Value(1, ycsb.DefaultValueSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Put(ycsb.Key(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutP2Authenticated(b *testing.B) { benchmarkPut(b, ModeP2) }
func BenchmarkPutP1(b *testing.B)              { benchmarkPut(b, ModeP1) }
func BenchmarkPutUnsecured(b *testing.B)       { benchmarkPut(b, ModeUnsecured) }

// benchCostStore opens a store with the calibrated hardware cost model, so
// the batched-write benchmarks expose the enclave-boundary amortization
// (world switches burn CPU) and not just Go-level locking.
func benchCostStore(b *testing.B, mode Mode) *Store {
	b.Helper()
	s, err := Open(Options{
		Mode:                  mode,
		MemtableSize:          1 << 20,
		TableFileSize:         256 << 10,
		LevelBase:             1 << 20,
		MmapReads:             true,
		SimulateHardwareCosts: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

// BenchmarkPut100Single vs BenchmarkPut100Batch: the same 100 records per
// iteration through the one-at-a-time path (100 ECalls + 100 WAL OCalls)
// and through Batch.Commit (one ECall, one grouped WAL append+fsync, at
// most one counter bump).
func BenchmarkPut100SingleP2(b *testing.B) {
	s := benchCostStore(b, ModeP2)
	val := ycsb.Value(1, ycsb.DefaultValueSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			if _, err := s.Put(ycsb.Key(uint64(i*100+j)), val); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPut100BatchP2(b *testing.B) {
	s := benchCostStore(b, ModeP2)
	val := ycsb.Value(1, ycsb.DefaultValueSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := s.NewBatch()
		for j := 0; j < 100; j++ {
			batch.Put(ycsb.Key(uint64(i*100+j)), val)
		}
		if _, err := batch.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanP2Verified(b *testing.B) {
	s := benchStore(b, ModeP2)
	const n = 20_000
	loadStore(b, s, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := uint64(i) % (n - 60)
		out, err := s.Scan(ycsb.Key(start), ycsb.Key(start+50))
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty scan")
		}
	}
}

// BenchmarkIterStream10kP2 streams a 10k-record verified range through the
// iterator — bounded memory, chunked verification — against the
// materialized Scan of the same range below it.
func BenchmarkIterStream10kP2(b *testing.B) {
	s := benchStore(b, ModeP2)
	const n = 10_000
	loadStore(b, s, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s.Iter(ycsb.Key(0), ycsb.Key(n))
		count := 0
		for it.Next() {
			count++
		}
		if err := it.Close(); err != nil {
			b.Fatal(err)
		}
		if count != n {
			b.Fatalf("streamed %d of %d records", count, n)
		}
	}
}

func BenchmarkScanMaterialized10kP2(b *testing.B) {
	s := benchStore(b, ModeP2)
	const n = 10_000
	loadStore(b, s, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.Scan(ycsb.Key(0), ycsb.Key(n))
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != n {
			b.Fatalf("scanned %d of %d records", len(out), n)
		}
	}
}

// TestObsOverheadGuard is the instrumentation-cost budget: steady-state
// single-writer put throughput with the default instrumentation on versus
// Options.DisableInstrumentation (nil recorders — the hot paths never
// even read the clock), measured in interleaved rounds on the same
// process. The budget is < 3% median regression on storage whose fsync
// costs real time (vfs.NewSlowSync — the regime the budget is a claim
// about: the histograms are meant to be left on in production, where the
// commit pipeline is fsync-bound and a handful of clock reads per group
// is noise; on a raw in-memory device the same clock reads are a
// double-digit fraction of a ~2µs put and no instrumentation could meet
// the bar). Timing on shared CI is noisy, so the comparison retries a few
// times and fails only if every attempt exceeds the budget.
func TestObsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	const (
		rounds        = 9
		opsPerRound   = 300
		syncDelay     = 100 * time.Microsecond
		maxRegression = 0.03
		attempts      = 4
	)
	openStore := func(disable bool) *Store {
		t.Helper()
		s, err := Open(Options{
			Mode:                   ModeP2,
			FS:                     vfs.NewSlowSync(vfs.NewMem(), syncDelay),
			MemtableSize:           64 << 20, // keep flushes off the measured path
			DisableInstrumentation: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	val := ycsb.Value(1, ycsb.DefaultValueSize)
	round := func(s *Store, tag string, r int) float64 {
		t.Helper()
		start := time.Now()
		for i := 0; i < opsPerRound; i++ {
			if _, err := s.Put([]byte(fmt.Sprintf("%s-%02d-%06d", tag, r, i)), val); err != nil {
				t.Fatal(err)
			}
		}
		return float64(opsPerRound) / time.Since(start).Seconds()
	}
	median := func(v []float64) float64 {
		sort.Float64s(v)
		return v[len(v)/2]
	}
	attempt := func() float64 {
		t.Helper()
		instr, plain := openStore(false), openStore(true)
		defer instr.Close()
		defer plain.Close()
		round(instr, "warm", -1) // burn one-off costs outside the measurement
		round(plain, "warm", -1)
		// Each round measures both stores back to back and keeps the
		// ratio: the pair runs adjacent in time, so machine-load drift
		// hits both sides and cancels in the ratio, and the median over
		// rounds discards the outlier pairs a GC or scheduler burst skews.
		// Order alternates so neither store systematically goes first.
		var ratios []float64
		for r := 0; r < rounds; r++ {
			var it, pt float64
			if r%2 == 0 {
				it = round(instr, "i", r)
				pt = round(plain, "p", r)
			} else {
				pt = round(plain, "p", r)
				it = round(instr, "i", r)
			}
			ratios = append(ratios, it/pt)
		}
		return 1 - median(ratios)
	}
	var worst float64
	for i := 0; i < attempts; i++ {
		reg := attempt()
		t.Logf("attempt %d: median put throughput regression %.2f%%", i+1, reg*100)
		if reg < maxRegression {
			return
		}
		if reg > worst {
			worst = reg
		}
	}
	t.Fatalf("instrumentation costs %.2f%% median put throughput across %d attempts (budget %.0f%%)",
		worst*100, attempts, maxRegression*100)
}

// BenchmarkVerificationOverhead measures the pure software cost of the
// eLSM verification layer by comparing a verified GET against the raw
// engine lookup underneath it (no hardware cost model in either).
func BenchmarkVerificationOverhead(b *testing.B) {
	cfg := core.Config{
		SGX:           sgx.Params{EPCSize: 1 << 40},
		MemtableSize:  256 << 10,
		TableFileSize: 128 << 10,
		LevelBase:     512 << 10,
		MmapReads:     true,
	}
	s, err := core.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const n = 50_000
	if err := s.BulkLoad(ycsb.GenRecords(n, ycsb.DefaultValueSize)); err != nil {
		b.Fatal(err)
	}
	b.Run("verified", func(b *testing.B) {
		ch := ycsb.NewKeyChooser(ycsb.Uniform, n, 1)
		for i := 0; i < b.N; i++ {
			if _, err := s.Get(ycsb.Key(ch.Next())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw-engine", func(b *testing.B) {
		ch := ycsb.NewKeyChooser(ycsb.Uniform, n, 1)
		for i := 0; i < b.N; i++ {
			if _, _, err := s.Engine().Get(ycsb.Key(ch.Next()), record.MaxTs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
