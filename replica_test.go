package elsm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"elsm/internal/repl"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// replicaOpts builds small-scale leader/follower options over a shared
// attestation secret.
func replicaOpts(shards int, secret string) Options {
	return Options{
		Mode:         ModeP2,
		Shards:       shards,
		Platform:     sgx.NewPlatformFromSecret([]byte(secret)),
		MemtableSize: 8 << 10,
		BlockSize:    512,
	}
}

// scanAll returns the store's full verified scan.
func scanAll(t *testing.T, s *Store) []Result {
	t.Helper()
	res, err := s.Scan([]byte("a"), []byte("z"))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return res
}

// sameResults compares two verified scans byte for byte.
func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) ||
			a[i].Ts != b[i].Ts || a[i].Found != b[i].Found {
			return false
		}
	}
	return true
}

// waitConverged polls until the follower's verified scan is byte-identical
// to the leader's, returning the converged scan.
func waitConverged(t *testing.T, leader, follower *Store) []Result {
	t.Helper()
	want := scanAll(t, leader)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := follower.ReplicationErr(); err != nil {
			t.Fatalf("replication failed: %v", err)
		}
		got := scanAll(t, follower)
		if sameResults(want, got) {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: leader %d results, follower %d", len(want), len(got))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// testFollowerOracle is the replication oracle: a follower bootstrapped
// from a checkpoint and then tailed must answer every verified Get and
// Scan byte-identically to the leader — same keys, same values, same
// trusted timestamps.
func testFollowerOracle(t *testing.T, shards int) {
	secret := "oracle-secret"
	leader, err := Open(replicaOpts(shards, secret))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()

	put := func(k, v string) {
		t.Helper()
		if _, err := leader.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		put(fmt.Sprintf("key-%04d", i), fmt.Sprintf("v1-%d", i))
	}

	src, err := leader.ReplicationSource()
	if err != nil {
		t.Fatal(err)
	}
	follower, err := OpenFollower(replicaOpts(shards, secret), src)
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	defer follower.Close()
	if !follower.IsFollower() {
		t.Fatal("follower does not report IsFollower")
	}

	// Live writes after bootstrap: overwrites, deletes, fresh keys, and a
	// cross-shard batch.
	for i := 0; i < 300; i += 2 {
		put(fmt.Sprintf("key-%04d", i), fmt.Sprintf("v2-%d", i))
	}
	for i := 0; i < 300; i += 7 {
		if _, err := leader.Delete([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	b := leader.NewBatch()
	for i := 0; i < 50; i++ {
		b.Put([]byte(fmt.Sprintf("batch-%04d", i)), []byte("bv"))
	}
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	got := waitConverged(t, leader, follower)
	if len(got) == 0 {
		t.Fatal("converged on an empty scan")
	}
	// Point reads spot-check the same oracle.
	for i := 0; i < 300; i += 13 {
		key := []byte(fmt.Sprintf("key-%04d", i))
		lr, err := leader.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := follower.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if lr.Found != fr.Found || !bytes.Equal(lr.Value, fr.Value) || lr.Ts != fr.Ts {
			t.Fatalf("get divergence at %s: leader %+v follower %+v", key, lr, fr)
		}
	}

	// Replication gauges are visible on both sides.
	if fc := leader.Stats().FollowersConnected; fc < uint64(shards) {
		t.Fatalf("leader reports %d connected follower streams, want >= %d", fc, shards)
	}
	if lag := follower.Stats().ReplLagGroups; lag != 0 {
		t.Fatalf("converged follower reports lag %d groups", lag)
	}

	// Writes are rejected with the typed error on every write surface.
	if _, err := follower.Put([]byte("w"), []byte("v")); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("follower Put: %v, want ErrReadOnlyReplica", err)
	}
	if _, err := follower.Delete([]byte("w")); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("follower Delete: %v, want ErrReadOnlyReplica", err)
	}
	fb := follower.NewBatch()
	fb.Put([]byte("w"), []byte("v"))
	if _, err := fb.Commit(); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("follower batch Commit: %v, want ErrReadOnlyReplica", err)
	}
	fb2 := follower.NewBatch()
	fb2.Put([]byte("w"), []byte("v"))
	if _, err := fb2.CommitAsync(nil); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("follower CommitAsync: %v, want ErrReadOnlyReplica", err)
	}
	// The rejected writes never reached the replica.
	if r, err := follower.Get([]byte("w")); err != nil || r.Found {
		t.Fatalf("rejected write visible on follower: %+v err %v", r, err)
	}
}

func TestFollowerOracle(t *testing.T)        { testFollowerOracle(t, 1) }
func TestFollowerOracleSharded(t *testing.T) { testFollowerOracle(t, 4) }

// TestFollowerShardCountMismatchRejected: a follower configured with a
// partition count different from the leader's must fail bootstrap with an
// error (the checkpoint header attests the leader's topology), not come up
// as a silently incomplete replica.
func TestFollowerShardCountMismatchRejected(t *testing.T) {
	secret := "topology-secret"
	leader, err := Open(replicaOpts(4, secret))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if _, err := leader.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	src, err := leader.ReplicationSource()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFollower(replicaOpts(2, secret), src); !IsAuthFailure(err) {
		t.Fatalf("follower with 2 shards of a 4-shard leader: %v, want auth failure", err)
	}
}

// TestFollowerWrongSecretRejected: a follower whose platform does not share
// the leader's attestation root must fail bootstrap, not serve bad data.
func TestFollowerWrongSecretRejected(t *testing.T) {
	leader, err := Open(replicaOpts(1, "leader-secret"))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if _, err := leader.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	src, err := leader.ReplicationSource()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFollower(replicaOpts(1, "other-secret"), src); !IsAuthFailure(err) {
		t.Fatalf("mismatched platform bootstrap: %v, want auth failure", err)
	}
}

// testPromotionUnderLoad is the failover oracle: concurrent writers load
// the leader while a follower tails; once the follower converges the
// leader is killed abruptly and the follower promoted. Every write the
// leader acknowledged as durable (and shipped) must read back
// byte-identical on the promoted store, the promoted store must accept
// writes, and a revived zombie leader's old-epoch frames must be rejected
// with repl.ErrFenced.
func testPromotionUnderLoad(t *testing.T, shards int) {
	secret := "failover-secret"
	leaderOpts := replicaOpts(shards, secret)
	leaderFS := vfs.NewMem() // kept so the dead leader can be revived as a zombie
	leaderOpts.FS = leaderFS
	leader, err := Open(leaderOpts)
	if err != nil {
		t.Fatal(err)
	}
	closeLeader := sync.OnceFunc(func() { leader.Close() })
	defer closeLeader()

	src, err := leader.ReplicationSource()
	if err != nil {
		t.Fatal(err)
	}
	follower, err := OpenFollower(replicaOpts(shards, secret), src)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	// Load phase: concurrent writers hammer the leader while the follower
	// tails. Acks are recorded only for writes the leader confirmed
	// durable.
	var ackMu sync.Mutex
	acked := make(map[string]string)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				k := fmt.Sprintf("load-%d-%04d", w, i)
				v := fmt.Sprintf("val-%d-%04d", w, i)
				if _, err := leader.Put([]byte(k), []byte(v)); err != nil {
					return
				}
				ackMu.Lock()
				acked[k] = v
				ackMu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Converge, then kill the leader abruptly: replication is
	// asynchronous, so the oracle covers acked-durable writes the stream
	// shipped — after convergence, that is all of them.
	waitConverged(t, leader, follower)
	closeLeader()

	epoch, err := follower.Promote(context.Background())
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if epoch == 0 {
		t.Fatal("promotion did not advance the epoch")
	}
	if follower.IsFollower() {
		t.Fatal("promoted store still reports IsFollower")
	}
	if got := follower.Stats().ReplEpoch; got != epoch {
		t.Fatalf("Stats().ReplEpoch = %d, want %d", got, epoch)
	}

	// Every acked write reads back byte-identical on the promoted store.
	for k, v := range acked {
		res, err := follower.Get([]byte(k))
		if err != nil {
			t.Fatalf("promoted read %q: %v", k, err)
		}
		if !res.Found || !bytes.Equal(res.Value, []byte(v)) {
			t.Fatalf("acked write %q lost or mutated after failover: %+v", k, res)
		}
	}

	// The promoted store is writable again.
	if _, err := follower.Put([]byte("post-failover"), []byte("ok")); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	if res, err := follower.Get([]byte("post-failover")); err != nil || !res.Found {
		t.Fatalf("write after promotion not readable: %+v err %v", res, err)
	}

	// Fencing: revive the dead leader from its own disk (epoch 0) and
	// replay its stream at the promoted store. Every frame — including
	// idle heartbeats — carries the attested epoch, so the promoted
	// store's tailer must fail stop with ErrFenced, not regress.
	oldHB := repl.HeartbeatInterval
	repl.HeartbeatInterval = 20 * time.Millisecond
	defer func() { repl.HeartbeatInterval = oldHB }()
	zombieOpts := replicaOpts(shards, secret)
	zombieOpts.FS = leaderFS
	zombie, err := Open(zombieOpts)
	if err != nil {
		t.Fatalf("revive zombie leader: %v", err)
	}
	defer zombie.Close()
	if _, err := zombie.Put([]byte("zombie-write"), []byte("stale")); err != nil {
		t.Fatal(err)
	}
	zsrc, err := zombie.ReplicationSource()
	if err != nil {
		t.Fatal(err)
	}
	cores, err := follower.shardCores()
	if err != nil {
		t.Fatal(err)
	}
	tl := repl.StartTailer(cores[0], zsrc, 0, len(cores))
	defer tl.Close()
	select {
	case <-tl.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("tailer on zombie leader never failed stop")
	}
	if err := tl.Err(); !errors.Is(err, repl.ErrFenced) {
		t.Fatalf("old-epoch replay: %v, want repl.ErrFenced", err)
	}
	// The zombie's stale write never reached the promoted store.
	if res, err := follower.Get([]byte("zombie-write")); err != nil || res.Found {
		t.Fatalf("stale old-epoch write visible after fencing: %+v err %v", res, err)
	}
}

func TestPromotionUnderLoad(t *testing.T)        { testPromotionUnderLoad(t, 1) }
func TestPromotionUnderLoadSharded(t *testing.T) { testPromotionUnderLoad(t, 4) }

// TestFollowerAutoRebootstrap: a follower whose frontier falls out of the
// leader's retained ring while it is down must re-bootstrap from a fresh
// checkpoint automatically on reopen (repl.ErrBehind is recoverable), then
// converge — surfacing the recovery in Stats().ReplRebootstraps instead of
// an error.
func TestFollowerAutoRebootstrap(t *testing.T) {
	secret := "rebootstrap-secret"
	leaderOpts := replicaOpts(1, secret)
	leaderOpts.ReplRingBytes = 4096 // a tiny ring: a burst of groups evicts it
	leader, err := Open(leaderOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if _, err := leader.Put([]byte("seed"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	src, err := leader.ReplicationSource()
	if err != nil {
		t.Fatal(err)
	}

	fopts := replicaOpts(1, secret)
	fopts.FS = vfs.NewMem()
	fopts.Counter = sgx.NewMonotonicCounter()
	follower, err := OpenFollower(fopts, src)
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, leader, follower)
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// While the follower is down, push the leader far past the tiny ring.
	val := bytes.Repeat([]byte("x"), 512)
	for i := 0; i < 200; i++ {
		if _, err := leader.Put([]byte(fmt.Sprintf("gap-%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen on the stale directory: the tail starts behind the ring, the
	// tailer fails stop with ErrBehind, and the supervisor re-bootstraps
	// from a fresh checkpoint without surfacing an error.
	follower, err = OpenFollower(fopts, src)
	if err != nil {
		t.Fatalf("reopen stale follower: %v", err)
	}
	defer follower.Close()
	waitConverged(t, leader, follower)
	if n := follower.Stats().ReplRebootstraps; n < 1 {
		t.Fatalf("ReplRebootstraps = %d, want >= 1", n)
	}
	if err := follower.ReplicationErr(); err != nil {
		t.Fatalf("ReplicationErr after recovered re-bootstrap: %v", err)
	}
}
