package elsm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"elsm/internal/sgx"
)

// replicaOpts builds small-scale leader/follower options over a shared
// attestation secret.
func replicaOpts(shards int, secret string) Options {
	return Options{
		Mode:         ModeP2,
		Shards:       shards,
		Platform:     sgx.NewPlatformFromSecret([]byte(secret)),
		MemtableSize: 8 << 10,
		BlockSize:    512,
	}
}

// scanAll returns the store's full verified scan.
func scanAll(t *testing.T, s *Store) []Result {
	t.Helper()
	res, err := s.Scan([]byte("a"), []byte("z"))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return res
}

// sameResults compares two verified scans byte for byte.
func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) ||
			a[i].Ts != b[i].Ts || a[i].Found != b[i].Found {
			return false
		}
	}
	return true
}

// waitConverged polls until the follower's verified scan is byte-identical
// to the leader's, returning the converged scan.
func waitConverged(t *testing.T, leader, follower *Store) []Result {
	t.Helper()
	want := scanAll(t, leader)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := follower.ReplicationErr(); err != nil {
			t.Fatalf("replication failed: %v", err)
		}
		got := scanAll(t, follower)
		if sameResults(want, got) {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: leader %d results, follower %d", len(want), len(got))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// testFollowerOracle is the replication oracle: a follower bootstrapped
// from a checkpoint and then tailed must answer every verified Get and
// Scan byte-identically to the leader — same keys, same values, same
// trusted timestamps.
func testFollowerOracle(t *testing.T, shards int) {
	secret := "oracle-secret"
	leader, err := Open(replicaOpts(shards, secret))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()

	put := func(k, v string) {
		t.Helper()
		if _, err := leader.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		put(fmt.Sprintf("key-%04d", i), fmt.Sprintf("v1-%d", i))
	}

	src, err := leader.ReplicationSource()
	if err != nil {
		t.Fatal(err)
	}
	follower, err := OpenFollower(replicaOpts(shards, secret), src)
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	defer follower.Close()
	if !follower.IsFollower() {
		t.Fatal("follower does not report IsFollower")
	}

	// Live writes after bootstrap: overwrites, deletes, fresh keys, and a
	// cross-shard batch.
	for i := 0; i < 300; i += 2 {
		put(fmt.Sprintf("key-%04d", i), fmt.Sprintf("v2-%d", i))
	}
	for i := 0; i < 300; i += 7 {
		if _, err := leader.Delete([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	b := leader.NewBatch()
	for i := 0; i < 50; i++ {
		b.Put([]byte(fmt.Sprintf("batch-%04d", i)), []byte("bv"))
	}
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	got := waitConverged(t, leader, follower)
	if len(got) == 0 {
		t.Fatal("converged on an empty scan")
	}
	// Point reads spot-check the same oracle.
	for i := 0; i < 300; i += 13 {
		key := []byte(fmt.Sprintf("key-%04d", i))
		lr, err := leader.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := follower.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if lr.Found != fr.Found || !bytes.Equal(lr.Value, fr.Value) || lr.Ts != fr.Ts {
			t.Fatalf("get divergence at %s: leader %+v follower %+v", key, lr, fr)
		}
	}

	// Replication gauges are visible on both sides.
	if fc := leader.Stats().FollowersConnected; fc < uint64(shards) {
		t.Fatalf("leader reports %d connected follower streams, want >= %d", fc, shards)
	}
	if lag := follower.Stats().ReplLagGroups; lag != 0 {
		t.Fatalf("converged follower reports lag %d groups", lag)
	}

	// Writes are rejected with the typed error on every write surface.
	if _, err := follower.Put([]byte("w"), []byte("v")); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("follower Put: %v, want ErrReadOnlyReplica", err)
	}
	if _, err := follower.Delete([]byte("w")); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("follower Delete: %v, want ErrReadOnlyReplica", err)
	}
	fb := follower.NewBatch()
	fb.Put([]byte("w"), []byte("v"))
	if _, err := fb.Commit(); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("follower batch Commit: %v, want ErrReadOnlyReplica", err)
	}
	fb2 := follower.NewBatch()
	fb2.Put([]byte("w"), []byte("v"))
	if _, err := fb2.CommitAsync(nil); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("follower CommitAsync: %v, want ErrReadOnlyReplica", err)
	}
	// The rejected writes never reached the replica.
	if r, err := follower.Get([]byte("w")); err != nil || r.Found {
		t.Fatalf("rejected write visible on follower: %+v err %v", r, err)
	}
}

func TestFollowerOracle(t *testing.T)        { testFollowerOracle(t, 1) }
func TestFollowerOracleSharded(t *testing.T) { testFollowerOracle(t, 4) }

// TestFollowerShardCountMismatchRejected: a follower configured with a
// partition count different from the leader's must fail bootstrap with an
// error (the checkpoint header attests the leader's topology), not come up
// as a silently incomplete replica.
func TestFollowerShardCountMismatchRejected(t *testing.T) {
	secret := "topology-secret"
	leader, err := Open(replicaOpts(4, secret))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if _, err := leader.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	src, err := leader.ReplicationSource()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFollower(replicaOpts(2, secret), src); !IsAuthFailure(err) {
		t.Fatalf("follower with 2 shards of a 4-shard leader: %v, want auth failure", err)
	}
}

// TestFollowerWrongSecretRejected: a follower whose platform does not share
// the leader's attestation root must fail bootstrap, not serve bad data.
func TestFollowerWrongSecretRejected(t *testing.T) {
	leader, err := Open(replicaOpts(1, "leader-secret"))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if _, err := leader.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	src, err := leader.ReplicationSource()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFollower(replicaOpts(1, "other-secret"), src); !IsAuthFailure(err) {
		t.Fatalf("mismatched platform bootstrap: %v, want auth failure", err)
	}
}
