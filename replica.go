package elsm

import (
	"errors"
	"fmt"
	"io"

	"elsm/internal/core"
	"elsm/internal/repl"
	"elsm/internal/sgx"
	"elsm/internal/shard"
	"elsm/internal/vfs"
)

// ErrReadOnlyReplica rejects writes on a follower store. Followers apply
// only groups shipped from their leader; local writes would fork the
// authenticated history.
var ErrReadOnlyReplica = errors.New("elsm: store is a read-only replica")

// FollowerSource feeds a follower: per-shard checkpoint streams for
// bootstrap and authenticated group tails for catch-up. Obtain one from the
// leader process via Store.ReplicationSource (in-process) or
// NewFollowerSource (over the elsm-server REPL protocol).
type FollowerSource = repl.Source

// NewFollowerSource returns a FollowerSource that dials an elsm-server
// leader's REPL endpoint at addr for every stream.
func NewFollowerSource(addr string) FollowerSource { return repl.NewNetSource(addr) }

// ReplicationSource turns this store into a replication leader: every shard
// gets a hub that retains recently committed groups and serves verified
// checkpoint and tail streams. The returned source can bootstrap and feed
// any number of in-process followers (OpenFollower) or be served over the
// network (cmd/elsm-server does this for the REPL protocol). Requires
// ModeP2 — replication ships attested state. Idempotent; the hubs close
// with the store.
func (s *Store) ReplicationSource() (FollowerSource, error) {
	if s.mode != ModeP2 {
		return nil, fmt.Errorf("elsm: replication requires ModeP2 (attested checkpoints and shipped groups); store runs %v", s.mode)
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.leaders == nil {
		cores, err := s.shardCores()
		if err != nil {
			return nil, err
		}
		leaders := make([]*repl.Leader, len(cores))
		for i, cs := range cores {
			leaders[i] = repl.NewLeader(cs, 0, i, len(cores))
		}
		s.leaders = leaders
	}
	return repl.NewLocalSource(s.leaders), nil
}

// OpenFollower opens a read-only replica fed from src. Shards without
// sealed local state bootstrap from a verified checkpoint (each run checked
// against the attested digest frontier before install); shards with state
// recover it exactly like a leader restart. Every shard then tails its
// leader feed from its durable frontier, verifying each shipped group
// (attestation report, shard identity, WAL hash chain, timestamp
// contiguity) before applying it. Reads serve the follower's own Merkle
// forest with full verification; writes fail with ErrReadOnlyReplica.
//
// Requirements: ModeP2 (the default), and opts.Platform sharing the
// leader's attestation root (sgx.NewPlatformFromSecret on both sides
// stands in for remote attestation). opts.Shards must match the leader's
// partition count — the attested shard identity in every checkpoint and
// shipped group enforces it, so a mismatch fails bootstrap (or the first
// tailed frame) instead of building an incomplete replica. Missing
// counters are created fresh; pass Counter/ShardCounters to keep rollback
// detection across follower restarts.
//
//	platform := sgx.NewPlatformFromSecret(secret) // same secret as leader
//	f, err := elsm.OpenFollower(elsm.Options{Platform: platform},
//	    elsm.NewFollowerSource("leader:7070"))
//	res, err := f.Get(key)                        // verified replica read
func OpenFollower(opts Options, src FollowerSource) (*Store, error) {
	if opts.Mode == 0 {
		opts.Mode = ModeP2
	}
	if opts.Mode != ModeP2 {
		return nil, fmt.Errorf("elsm: follower mode requires ModeP2, got %v", opts.Mode)
	}
	if opts.Platform == nil {
		return nil, errors.New("elsm: follower needs Options.Platform sharing the leader's attestation root (sgx.NewPlatformFromSecret)")
	}
	if opts.Shards == 0 {
		opts.Shards = 1
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	// Restore and open must see one filesystem and one set of counters, so
	// resolve both here instead of letting Open conjure fresh ones.
	if opts.FS == nil {
		if opts.Dir != "" {
			osfs, err := vfs.NewOS(opts.Dir)
			if err != nil {
				return nil, err
			}
			opts.FS = osfs
			opts.Dir = ""
		} else {
			opts.FS = vfs.NewMem()
		}
	}
	if opts.Shards == 1 {
		if opts.Counter == nil && len(opts.ShardCounters) == 1 {
			opts.Counter = opts.ShardCounters[0]
			opts.ShardCounters = nil
		}
		if opts.Counter == nil {
			opts.Counter = sgx.NewMonotonicCounter()
		}
	} else if len(opts.ShardCounters) == 0 {
		opts.ShardCounters = make([]*sgx.MonotonicCounter, opts.Shards)
		for i := range opts.ShardCounters {
			opts.ShardCounters[i] = sgx.NewMonotonicCounter()
		}
	}
	for i := 0; i < opts.Shards; i++ {
		fs := opts.FS
		ctr := opts.Counter
		if opts.Shards > 1 {
			sub, err := vfs.Sub(opts.FS, shard.DirName(i))
			if err != nil {
				return nil, fmt.Errorf("elsm: follower shard %d filesystem: %w", i, err)
			}
			fs = sub
			ctr = opts.ShardCounters[i]
		}
		if !core.NeedsBootstrap(fs) {
			continue // sealed state present: a restart, recover it below
		}
		if err := bootstrapShard(fs, opts.Platform, ctr, src, i, opts.Shards); err != nil {
			return nil, err
		}
	}
	s, err := Open(opts)
	if err != nil {
		return nil, err
	}
	s.readOnly = true
	cores, err := s.shardCores()
	if err != nil {
		s.Close()
		return nil, err
	}
	for i, cs := range cores {
		s.tailers = append(s.tailers, repl.StartTailer(cs, src, i, len(cores)))
	}
	return s, nil
}

// bootstrapShard wipes any partial prior restore and imports shard i's
// checkpoint from src into fs. The restore rejects a checkpoint whose
// attested shard identity is not (i, shards) — mismatched follower
// opts.Shards, or a transport serving the wrong shard's stream, fail here
// instead of silently building an incomplete replica.
func bootstrapShard(fs vfs.FS, platform *sgx.Platform, ctr *sgx.MonotonicCounter, src FollowerSource, i, shards int) error {
	if err := core.WipeFS(fs); err != nil {
		return fmt.Errorf("elsm: follower shard %d wipe: %w", i, err)
	}
	rc, err := src.Checkpoint(i)
	if err != nil {
		return fmt.Errorf("elsm: follower shard %d checkpoint: %w", i, err)
	}
	err = core.RestoreCheckpoint(rc, core.RestoreConfig{
		FS: fs, Platform: platform, Counter: ctr, Shard: i, Shards: shards,
	})
	rc.Close()
	if err != nil {
		return fmt.Errorf("elsm: follower shard %d bootstrap: %w", i, err)
	}
	return nil
}

// IsFollower reports whether this store is a read-only replica.
func (s *Store) IsFollower() bool { return s.readOnly }

// ReplicationErr reports why replication failed-stop: the first
// verification or apply failure of any shard's tailer. Nil while every
// tailer is healthy (transport blips that reconnect do not count), and on
// leaders. A failed follower keeps serving its last verified state;
// recovery is operator-driven (re-bootstrap).
func (s *Store) ReplicationErr() error {
	for _, t := range s.tailers {
		if err := t.Err(); err != nil {
			return err
		}
	}
	return nil
}

// ServeCheckpoint streams shard's portable checkpoint to w — the leader
// half of the REPL CKPT command.
func (s *Store) ServeCheckpoint(shard int, w io.Writer) error {
	src, err := s.ReplicationSource()
	if err != nil {
		return err
	}
	rc, err := src.Checkpoint(shard)
	if err != nil {
		return err
	}
	defer rc.Close()
	_, err = io.Copy(w, rc)
	return err
}

// ServeTail streams shard's committed groups from fromTs to w, blocking at
// the head — the leader half of the REPL TAIL command. It returns when w
// fails, stop closes, the store closes, or fromTs has fallen out of the
// retained ring (repl.ErrBehind; the follower must re-bootstrap).
func (s *Store) ServeTail(shard int, fromTs uint64, w io.Writer, stop <-chan struct{}) error {
	l, err := s.tailLeader(shard)
	if err != nil {
		return err
	}
	return l.ServeTail(fromTs, w, stop)
}

// TailReady reports whether a ServeTail for (shard, fromTs) can serve at
// least its first frame: repl.ErrBehind when fromTs has fallen out of the
// retained ring, nil when the stream would start (possibly blocking at the
// head for new groups). Servers use it to settle the protocol status line
// before the stream goes quiet.
func (s *Store) TailReady(shard int, fromTs uint64) error {
	l, err := s.tailLeader(shard)
	if err != nil {
		return err
	}
	return l.TailReady(fromTs)
}

// tailLeader resolves shard's replication hub, creating the hubs lazily.
func (s *Store) tailLeader(shard int) (*repl.Leader, error) {
	if _, err := s.ReplicationSource(); err != nil {
		return nil, err
	}
	s.replMu.Lock()
	leaders := s.leaders
	s.replMu.Unlock()
	if shard < 0 || shard >= len(leaders) {
		return nil, fmt.Errorf("elsm: no such shard %d", shard)
	}
	return leaders[shard], nil
}

// shardCores resolves every partition's ModeP2 core store, in shard order.
func (s *Store) shardCores() ([]*core.Store, error) {
	if r, ok := s.kv.(*shard.Router); ok {
		out := make([]*core.Store, r.NumShards())
		for i := range out {
			cs, ok := r.Shard(i).(*core.Store)
			if !ok {
				return nil, fmt.Errorf("elsm: shard %d is not a ModeP2 instance", i)
			}
			out[i] = cs
		}
		return out, nil
	}
	cs, ok := s.kv.(*core.Store)
	if !ok {
		return nil, fmt.Errorf("elsm: store is not a ModeP2 instance")
	}
	return []*core.Store{cs}, nil
}

// replStats folds replication gauges into st: follower lag summed over the
// given tailers, connected-follower count summed over this store's hubs.
func (s *Store) replStats(st *Stats, tailers []*repl.Tailer) {
	for _, t := range tailers {
		g, b := t.Lag()
		st.ReplLagGroups += g
		st.ReplLagBytes += b
	}
	s.replMu.Lock()
	for _, l := range s.leaders {
		st.FollowersConnected += uint64(l.Followers())
	}
	s.replMu.Unlock()
}
