package elsm

import (
	"context"
	"errors"
	"fmt"
	"io"

	"elsm/internal/core"
	"elsm/internal/obs"
	"elsm/internal/repl"
	"elsm/internal/sgx"
	"elsm/internal/shard"
	"elsm/internal/vfs"
)

// ErrReadOnlyReplica rejects writes on a follower store. Followers apply
// only groups shipped from their leader; local writes would fork the
// authenticated history.
var ErrReadOnlyReplica = errors.New("elsm: store is a read-only replica")

// FollowerSource feeds a follower: per-shard checkpoint streams for
// bootstrap and authenticated group tails for catch-up. Obtain one from the
// leader process via Store.ReplicationSource (in-process) or
// NewFollowerSource (over the elsm-server REPL protocol).
type FollowerSource = repl.Source

// NewFollowerSource returns a FollowerSource that dials an elsm-server
// leader's REPL endpoint at addr for every stream.
func NewFollowerSource(addr string) FollowerSource { return repl.NewNetSource(addr) }

// ReplicationSource turns this store into a replication leader: every shard
// gets a hub that retains recently committed groups and serves verified
// checkpoint and tail streams. The returned source can bootstrap and feed
// any number of in-process followers (OpenFollower) or be served over the
// network (cmd/elsm-server does this for the REPL protocol). Requires
// ModeP2 — replication ships attested state. Idempotent; the hubs close
// with the store.
func (s *Store) ReplicationSource() (FollowerSource, error) {
	if s.mode != ModeP2 {
		return nil, fmt.Errorf("elsm: replication requires ModeP2 (attested checkpoints and shipped groups); store runs %v", s.mode)
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.leaders == nil {
		cores, err := s.shardCores()
		if err != nil {
			return nil, err
		}
		leaders := make([]*repl.Leader, len(cores))
		for i, cs := range cores {
			leaders[i] = repl.NewLeader(cs, int64(s.ringBytes), i, len(cores))
		}
		s.leaders = leaders
	}
	return repl.NewLocalSource(s.leaders), nil
}

// OpenFollower opens a read-only replica fed from src. Shards without
// sealed local state bootstrap from a verified checkpoint (each run checked
// against the attested digest frontier before install); shards with state
// recover it exactly like a leader restart. Every shard then tails its
// leader feed from its durable frontier, verifying each shipped group
// (attestation report, shard identity, WAL hash chain, timestamp
// contiguity) before applying it. Reads serve the follower's own Merkle
// forest with full verification; writes fail with ErrReadOnlyReplica.
//
// Requirements: ModeP2 (the default), and opts.Platform sharing the
// leader's attestation root (sgx.NewPlatformFromSecret on both sides
// stands in for remote attestation). opts.Shards must match the leader's
// partition count — the attested shard identity in every checkpoint and
// shipped group enforces it, so a mismatch fails bootstrap (or the first
// tailed frame) instead of building an incomplete replica. Missing
// counters are created fresh; pass Counter/ShardCounters to keep rollback
// detection across follower restarts.
//
//	platform := sgx.NewPlatformFromSecret(secret) // same secret as leader
//	f, err := elsm.OpenFollower(elsm.Options{Platform: platform},
//	    elsm.NewFollowerSource("leader:7070"))
//	res, err := f.Get(key)                        // verified replica read
func OpenFollower(opts Options, src FollowerSource) (*Store, error) {
	if opts.Mode == 0 {
		opts.Mode = ModeP2
	}
	if opts.Mode != ModeP2 {
		return nil, fmt.Errorf("elsm: follower mode requires ModeP2, got %v", opts.Mode)
	}
	if opts.Platform == nil {
		return nil, errors.New("elsm: follower needs Options.Platform sharing the leader's attestation root (sgx.NewPlatformFromSecret)")
	}
	if opts.Shards == 0 {
		opts.Shards = 1
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	// Restore and open must see one filesystem and one set of counters, so
	// resolve both here instead of letting Open conjure fresh ones.
	if opts.FS == nil {
		if opts.Dir != "" {
			osfs, err := vfs.NewOS(opts.Dir)
			if err != nil {
				return nil, err
			}
			opts.FS = osfs
			opts.Dir = ""
		} else {
			opts.FS = vfs.NewMem()
		}
	}
	if opts.Shards == 1 {
		if opts.Counter == nil && len(opts.ShardCounters) == 1 {
			opts.Counter = opts.ShardCounters[0]
			opts.ShardCounters = nil
		}
		if opts.Counter == nil {
			opts.Counter = sgx.NewMonotonicCounter()
		}
	} else if len(opts.ShardCounters) == 0 {
		opts.ShardCounters = make([]*sgx.MonotonicCounter, opts.Shards)
		for i := range opts.ShardCounters {
			opts.ShardCounters[i] = sgx.NewMonotonicCounter()
		}
	}
	for i := 0; i < opts.Shards; i++ {
		fs, ctr, err := followerShardEnv(&opts, i)
		if err != nil {
			return nil, err
		}
		if !core.NeedsBootstrap(fs) {
			continue // sealed state present: a restart, recover it below
		}
		if err := bootstrapShard(fs, opts.Platform, ctr, src, i, opts.Shards); err != nil {
			return nil, err
		}
	}
	s, err := Open(opts)
	if err != nil {
		return nil, err
	}
	s.readOnly.Store(true)
	s.fsrc = src
	s.fopts = &opts
	if err := s.startTailers(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// followerShardEnv resolves shard i's filesystem and trust root from the
// follower's (already resolved) options.
func followerShardEnv(opts *Options, i int) (vfs.FS, *sgx.MonotonicCounter, error) {
	if opts.Shards <= 1 {
		return opts.FS, opts.Counter, nil
	}
	sub, err := vfs.Sub(opts.FS, shard.DirName(i))
	if err != nil {
		return nil, nil, fmt.Errorf("elsm: follower shard %d filesystem: %w", i, err)
	}
	return sub, opts.ShardCounters[i], nil
}

// startTailers starts one tailer per shard from the durable frontier and a
// supervisor goroutine per tailer that reacts to repl.ErrBehind with an
// automatic checkpoint re-bootstrap.
func (s *Store) startTailers() error {
	cores, err := s.shardCores()
	if err != nil {
		return err
	}
	tailers := make([]*repl.Tailer, len(cores))
	for i, cs := range cores {
		tailers[i] = repl.StartTailer(cs, s.fsrc, i, len(cores))
	}
	s.replMu.Lock()
	s.tailers = tailers
	s.replMu.Unlock()
	for _, t := range tailers {
		go s.superviseTailer(t)
	}
	return nil
}

// currentTailers snapshots the live tailer set (it changes across
// re-bootstraps and empties at promotion).
func (s *Store) currentTailers() []*repl.Tailer {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.tailers
}

// superviseTailer watches one tailer generation. repl.ErrBehind is the one
// fail-stop a follower can recover from on its own — the leader's ring no
// longer reaches our frontier (or a promotion moved the epoch past ours),
// but a fresh verified checkpoint re-joins the stream. Everything else
// (verification failures, fencing) stays down for the operator.
func (s *Store) superviseTailer(t *repl.Tailer) {
	<-t.Done()
	if !errors.Is(t.Err(), repl.ErrBehind) {
		return
	}
	s.maybeRebootstrap(t)
}

// maybeRebootstrap re-bootstraps the follower unless the trigger's tailer
// generation was already replaced (N shards falling behind together race N
// supervisors here; the first one re-bootstraps the whole store, the rest
// find their tailer gone and stand down).
func (s *Store) maybeRebootstrap(trigger *repl.Tailer) {
	s.failoverMu.Lock()
	defer s.failoverMu.Unlock()
	if s.closed || !s.readOnly.Load() {
		return
	}
	member := false
	for _, t := range s.currentTailers() {
		if t == trigger {
			member = true
			break
		}
	}
	if !member {
		return
	}
	if err := s.rebootstrapLocked(); err != nil {
		s.replMu.Lock()
		s.bootErr = fmt.Errorf("elsm: automatic re-bootstrap failed: %w", err)
		s.replMu.Unlock()
		s.obsv.Event(obs.EventRebootstrap, -1, "automatic re-bootstrap failed: %v", err)
		return
	}
	s.rebootstraps.Add(1)
	s.obsv.Event(obs.EventRebootstrap, -1,
		"follower re-bootstrapped from checkpoint (total %d)", s.rebootstraps.Load())
}

// rebootstrapLocked (failoverMu held) tears the follower down and rebuilds
// it from the source: stop every tailer, close the engine, wipe and
// re-checkpoint the shards that fell behind (recovering the rest from
// their sealed state), reopen, swap the engine in and restart the tailers.
// Reads racing the swap may see the old engine's closed error for a
// moment; the store is serving verified state again when this returns.
func (s *Store) rebootstrapLocked() error {
	old := s.currentTailers()
	for _, t := range old {
		t.Close()
	}
	behind := make(map[int]bool, len(old))
	for i, t := range old {
		behind[i] = errors.Is(t.Err(), repl.ErrBehind)
	}
	if err := s.base().Close(); err != nil {
		return fmt.Errorf("close stale engine: %w", err)
	}
	opts := *s.fopts
	// Thread the existing hub through so the event history and store-wide
	// histograms survive the engine swap (per-shard recorders restart with
	// the fresh engine).
	opts.obsHub = s.obsv
	for i := 0; i < opts.Shards; i++ {
		fs, ctr, err := followerShardEnv(&opts, i)
		if err != nil {
			return err
		}
		if !behind[i] && !core.NeedsBootstrap(fs) {
			continue
		}
		if err := bootstrapShard(fs, opts.Platform, ctr, s.fsrc, i, opts.Shards); err != nil {
			return err
		}
	}
	fresh, err := Open(opts)
	if err != nil {
		return fmt.Errorf("reopen after re-bootstrap: %w", err)
	}
	s.kvMu.Lock()
	s.kv = fresh.kv // steal the engine; the wrapper is discarded un-closed
	s.recs = fresh.recs
	s.kvMu.Unlock()
	s.replMu.Lock()
	s.bootErr = nil
	s.replMu.Unlock()
	return s.startTailers()
}

// bootstrapShard wipes any partial prior restore and imports shard i's
// checkpoint from src into fs. The restore rejects a checkpoint whose
// attested shard identity is not (i, shards) — mismatched follower
// opts.Shards, or a transport serving the wrong shard's stream, fail here
// instead of silently building an incomplete replica.
func bootstrapShard(fs vfs.FS, platform *sgx.Platform, ctr *sgx.MonotonicCounter, src FollowerSource, i, shards int) error {
	if err := core.WipeFS(fs); err != nil {
		return fmt.Errorf("elsm: follower shard %d wipe: %w", i, err)
	}
	rc, err := src.Checkpoint(i)
	if err != nil {
		return fmt.Errorf("elsm: follower shard %d checkpoint: %w", i, err)
	}
	err = core.RestoreCheckpoint(rc, core.RestoreConfig{
		FS: fs, Platform: platform, Counter: ctr, Shard: i, Shards: shards,
	})
	rc.Close()
	if err != nil {
		return fmt.Errorf("elsm: follower shard %d bootstrap: %w", i, err)
	}
	return nil
}

// IsFollower reports whether this store is a read-only replica.
func (s *Store) IsFollower() bool { return s.readOnly.Load() }

// ReplEpoch reports the store's sealed replication epoch (shard 0's on a
// sharded store, where epochs advance in lockstep at promotion). Frames
// attesting an older epoch are fenced with repl.ErrFenced.
func (s *Store) ReplEpoch() uint64 {
	cores, err := s.shardCores()
	if err != nil || len(cores) == 0 {
		return 0
	}
	return cores[0].ReplEpoch()
}

// Promote turns this follower into a writable leader — the failover path
// when the old leader is gone. It stops the tailers (draining whatever the
// feed already delivered), verifies no tailer failed verification (a
// follower that detected tampering must not be promoted over it), seals
// every shard at its durable frontier under a NEW replication epoch, and
// flips the store writable. Frames a zombie leader keeps shipping from the
// old epoch are rejected with repl.ErrFenced by anyone tailing the
// promoted store's lineage. All shards promote together; the returned
// epoch is the store's new sealed epoch.
//
//	// leader died; on the replica:
//	epoch, err := follower.Promote(ctx)
//	// follower now accepts writes and can serve ReplicationSource()
//
// A tailer down with repl.ErrBehind does not block promotion: its state is
// consistent, merely stale, and accepting that data loss is exactly the
// operator's call when they invoke failover.
func (s *Store) Promote(ctx context.Context) (uint64, error) {
	s.failoverMu.Lock()
	defer s.failoverMu.Unlock()
	if s.closed {
		return 0, errors.New("elsm: store is closed")
	}
	if !s.readOnly.Load() {
		return 0, errors.New("elsm: Promote requires a follower store")
	}
	tailers := s.currentTailers()
	for _, t := range tailers {
		t.Close()
	}
	for i, t := range tailers {
		if err := t.Err(); err != nil && !errors.Is(err, repl.ErrBehind) {
			return 0, fmt.Errorf("elsm: refusing to promote shard %d over a failed-stop tailer: %w", i, err)
		}
	}
	cores, err := s.shardCores()
	if err != nil {
		return 0, err
	}
	// Pre-drain every shard's apply pipeline so the per-shard epoch bumps
	// below cannot fail halfway through (all shards promote, or none).
	if err := s.base().Sync(ctx); err != nil {
		return 0, fmt.Errorf("elsm: promote drain: %w", err)
	}
	var epoch uint64
	for i, cs := range cores {
		e, err := cs.Promote()
		if err != nil {
			return 0, fmt.Errorf("elsm: promote shard %d: %w", i, err)
		}
		if i == 0 {
			epoch = e
		}
	}
	s.replMu.Lock()
	s.tailers = nil
	s.bootErr = nil
	s.replMu.Unlock()
	s.readOnly.Store(false)
	s.obsv.Event(obs.EventPromote, -1, "follower promoted to leader at epoch %d", epoch)
	return epoch, nil
}

// ReplicationErr reports why replication failed-stop: the first
// verification or apply failure of any shard's tailer, or the error of the
// last automatic re-bootstrap attempt. Nil while every tailer is healthy
// (transport blips that reconnect, and re-bootstraps that succeeded, do
// not count), and on leaders. A failed follower keeps serving its last
// verified state; unrecoverable failures (tampering, fencing) stay down
// for the operator.
func (s *Store) ReplicationErr() error {
	s.replMu.Lock()
	bootErr := s.bootErr
	s.replMu.Unlock()
	if bootErr != nil {
		return bootErr
	}
	for _, t := range s.currentTailers() {
		if err := t.Err(); err != nil && !errors.Is(err, repl.ErrBehind) {
			return err
		}
	}
	return nil
}

// ServeCheckpoint streams shard's portable checkpoint to w — the leader
// half of the REPL CKPT command.
func (s *Store) ServeCheckpoint(shard int, w io.Writer) error {
	src, err := s.ReplicationSource()
	if err != nil {
		return err
	}
	rc, err := src.Checkpoint(shard)
	if err != nil {
		return err
	}
	defer rc.Close()
	_, err = io.Copy(w, rc)
	return err
}

// ServeTail streams shard's committed groups from fromTs to w, blocking at
// the head — the leader half of the REPL TAIL command. It returns when w
// fails, stop closes, the store closes, or fromTs has fallen out of the
// retained ring (repl.ErrBehind; the follower must re-bootstrap).
func (s *Store) ServeTail(shard int, fromTs uint64, w io.Writer, stop <-chan struct{}) error {
	l, err := s.tailLeader(shard)
	if err != nil {
		return err
	}
	return l.ServeTail(fromTs, w, stop)
}

// TailReady reports whether a ServeTail for (shard, fromTs) can serve at
// least its first frame: repl.ErrBehind when fromTs has fallen out of the
// retained ring, nil when the stream would start (possibly blocking at the
// head for new groups). Servers use it to settle the protocol status line
// before the stream goes quiet.
func (s *Store) TailReady(shard int, fromTs uint64) error {
	l, err := s.tailLeader(shard)
	if err != nil {
		return err
	}
	return l.TailReady(fromTs)
}

// tailLeader resolves shard's replication hub, creating the hubs lazily.
func (s *Store) tailLeader(shard int) (*repl.Leader, error) {
	if _, err := s.ReplicationSource(); err != nil {
		return nil, err
	}
	s.replMu.Lock()
	leaders := s.leaders
	s.replMu.Unlock()
	if shard < 0 || shard >= len(leaders) {
		return nil, fmt.Errorf("elsm: no such shard %d", shard)
	}
	return leaders[shard], nil
}

// shardCores resolves every partition's ModeP2 core store, in shard order.
func (s *Store) shardCores() ([]*core.Store, error) {
	kv := s.base()
	if r, ok := kv.(*shard.Router); ok {
		out := make([]*core.Store, r.NumShards())
		for i := range out {
			cs, ok := r.Shard(i).(*core.Store)
			if !ok {
				return nil, fmt.Errorf("elsm: shard %d is not a ModeP2 instance", i)
			}
			out[i] = cs
		}
		return out, nil
	}
	cs, ok := kv.(*core.Store)
	if !ok {
		return nil, fmt.Errorf("elsm: store is not a ModeP2 instance")
	}
	return []*core.Store{cs}, nil
}

// replStats folds replication gauges into st: follower lag and transport
// reconnects summed over the given tailers, re-bootstrap count and sealed
// epoch from the store, connected-follower count summed over this store's
// hubs.
func (s *Store) replStats(st *Stats, tailers []*repl.Tailer) {
	for _, t := range tailers {
		g, b := t.Lag()
		st.ReplLagGroups += g
		st.ReplLagBytes += b
		st.ReplReconnects += t.Reconnects()
	}
	st.ReplRebootstraps = s.rebootstraps.Load()
	if cores, err := s.shardCores(); err == nil && len(cores) > 0 {
		st.ReplEpoch = cores[0].ReplEpoch()
	}
	s.replMu.Lock()
	for _, l := range s.leaders {
		st.FollowersConnected += uint64(l.Followers())
	}
	s.replMu.Unlock()
}
