// Figure benchmarks: one testing.B benchmark per paper table/figure
// (BenchmarkFigNN drives a reduced-scale sweep of the same code paths the
// full harness in cmd/elsm-bench runs). They live in the external test
// package because internal/bench drives the network front end, which is
// built on the public elsm API.
//
// The figure benchmarks run at 1/256 scale with the calibrated SGX cost
// model so `go test -bench=.` finishes in minutes; run
// `go run ./cmd/elsm-bench -exp all` for the paper-scale (1/32) sweeps
// recorded in EXPERIMENTS.md.
package elsm_test

import (
	"fmt"
	"testing"

	"elsm/internal/bench"
	"elsm/internal/costmodel"
)

// benchCfg is the reduced-scale configuration for figure benchmarks.
func benchCfg() bench.Config {
	m := costmodel.Calibrated()
	return bench.Config{Scale: 256, Ops: 300, Cost: &m}
}

// runFigure executes one figure reproduction per benchmark iteration and
// reports its wall time; the series values are logged so `-bench` output
// doubles as a mini results table.
func runFigure(b *testing.B, run func(bench.Config) (bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := run(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.Format())
		}
	}
}

func BenchmarkFig2BufferPlacement(b *testing.B)      { runFigure(b, bench.Fig2) }
func BenchmarkFig5aReadWriteMix(b *testing.B)        { runFigure(b, bench.Fig5a) }
func BenchmarkFig5bDataSize(b *testing.B)            { runFigure(b, bench.Fig5b) }
func BenchmarkFig5cDistributions(b *testing.B)       { runFigure(b, bench.Fig5c) }
func BenchmarkFig6aReadScaling(b *testing.B)         { runFigure(b, bench.Fig6a) }
func BenchmarkFig6bMmapVsBuffer(b *testing.B)        { runFigure(b, bench.Fig6b) }
func BenchmarkFig6cBufferSize(b *testing.B)          { runFigure(b, bench.Fig6c) }
func BenchmarkFig7aWriteScaling(b *testing.B)        { runFigure(b, bench.Fig7a) }
func BenchmarkFig7bCompactionToggle(b *testing.B)    { runFigure(b, bench.Fig7b) }
func BenchmarkFig8WriteBufferPlacement(b *testing.B) { runFigure(b, bench.Fig8) }

// BenchmarkTable1 exists so every paper table has a bench target; Table 1
// is qualitative, so this just validates its rendering.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if bench.Table1() == "" {
			b.Fatal("empty table")
		}
	}
	if testing.Verbose() {
		fmt.Print(bench.Table1())
	}
}
