// Package elsm is an authenticated log-structured merge-tree key-value
// store for hardware enclaves — a Go reproduction of "Authenticated
// Key-Value Stores with Hardware Enclaves" (Tang et al., MIDDLEWARE 2021).
//
// The store runs its code and small metadata inside a (simulated) SGX
// enclave while placing read buffers and SSTable files in untrusted memory
// and disk. Data outside the enclave is protected by a forest of Merkle
// trees (one per LSM run) with per-record embedded proofs; every GET and
// SCAN result is verified for integrity, freshness and completeness before
// it is returned, and COMPACTION re-authenticates its inputs inside the
// enclave. A trusted monotonic counter defends against rollback.
//
// Quick start:
//
//	store, err := elsm.Open(elsm.Options{})
//	if err != nil { ... }
//	defer store.Close()
//	ts, _ := store.Put([]byte("key"), []byte("value"))
//	res, err := store.Get([]byte("key"))   // verified: integrity+freshness
//
// Every write — single Put or client Batch — rides a cross-client
// group-commit pipeline: concurrent commits coalesce into one grouped WAL
// append, one fsync and at most one monotonic-counter bump, each group is
// marker-terminated in the log so crash recovery replays a prefix of whole
// commits, and the WAL append of one group overlaps the fsync of the
// previous (two-stage pipelining). Batches additionally pack their
// operations into one enclave round trip:
//
//	b := store.NewBatch()
//	b.Put([]byte("k1"), []byte("v1"))
//	b.Delete([]byte("k2"))
//	ts, err = b.Commit() // atomic, durable on return
//
// When throughput matters more than immediate durability, CommitAsync
// acknowledges a batch as soon as its trusted timestamp is assigned and the
// group is appended, resolving the returned future at fsync; Sync is the
// durability barrier:
//
//	fut, err := b.CommitAsync(ctx)
//	ts, err = fut.Ts(ctx)            // acknowledged: timestamp assigned
//	err = store.Sync(ctx)            // everything acknowledged is now durable
//
// Snapshots turn the paper's point-in-time verified reads into a session:
// Snapshot pins the trusted digest snapshot with its runs and memtables, so
// any number of Get/Iter/Scan calls observe the SAME verified state — bit
// for bit — no matter how many flushes or compactions run concurrently:
//
//	snap, err := store.Snapshot()
//	defer snap.Close()
//	res, err = snap.Get([]byte("key"))
//	results, err := snap.Scan([]byte("a"), []byte("z"))
//
// Range reads stream with incremental verification and completeness
// checking, in memory bounded by the chunk size — each iterator is itself a
// point-in-time session — or materialize with Scan, which is built on the
// same verified stream:
//
//	it := store.Iter([]byte("a"), []byte("z"))
//	for it.Next() {
//	    use(it.Key(), it.Value())
//	}
//	if err := it.Close(); err != nil { ... }       // ErrAuthFailed on tamper
//	results, err = store.Scan([]byte("a"), []byte("z"))
//
// Every operation has a context-aware variant (PutCtx, GetCtx, IterCtx,
// Batch.CommitCtx, ...): cancelling the context withdraws a commit still
// waiting in the group-commit queue, stops a streaming iterator and its
// prefetch, and deadlines long verified scans.
//
// For write-heavy deployments, Options.Shards hash-partitions the store
// into N independent authenticated instances behind a router (N WALs, N
// group-commit pipelines, N maintenance workers — and N independent trust
// roots), with the same API on top: batches split across shards and commit
// in parallel, scans merge the per-shard verified streams in key order,
// and snapshots pin all shards atomically:
//
//	store, err := elsm.Open(elsm.Options{Dir: dir, Shards: 4})
//
// The shard count is part of the on-disk layout — reopen with the value
// the store was created with (and pass per-shard ShardCounters to keep
// rollback detection across restarts).
//
// Read replicas scale verified reads: a leader exports portable verified
// checkpoints and ships its committed groups with attestation, and a
// follower — bootstrapped from the checkpoint, tailing the shipped log —
// serves the same verified Gets and Scans read-only (writes fail with
// ErrReadOnlyReplica). Every checkpoint run and every shipped group is
// verified against attested digests before the follower applies it;
// tampering anywhere fail-stops the replica instead of serving wrong
// data. Both sides derive their platform from a shared secret (the
// stand-in for remote attestation):
//
//	platform := sgx.NewPlatformFromSecret(secret)
//	leader, _ := elsm.Open(elsm.Options{Platform: platform})
//	src, _ := leader.ReplicationSource()      // or NewFollowerSource(addr)
//	follower, _ := elsm.OpenFollower(elsm.Options{Platform: platform}, src)
//	res, _ := follower.Get([]byte("key"))     // verified replica read
//
// Stats.ReplLagGroups / ReplLagBytes report how far a follower trails;
// elsm-server serves the same roles with -repl-secret (leader) and
// -follow (replica).
//
// Replication degrades gracefully and fails over: the tailer reconnects
// transient transport failures with backoff (Stats.ReplReconnects), a
// follower that falls behind the leader's retained ring re-bootstraps
// from a fresh checkpoint automatically (Stats.ReplRebootstraps), and
// when the leader dies, Promote fences it out — every checkpoint and
// shipped frame carries a sealed replication epoch, and frames from a
// deposed epoch are rejected with repl.ErrFenced:
//
//	// leader died; on the replica:
//	epoch, err := follower.Promote(ctx) // drain, seal new epoch, go writable
//	src, _ := follower.ReplicationSource() // the promoted store leads now
//
// (elsm-server: REPL PROMOTE.) Verification failures never self-heal:
// a follower that detected tampering stays down with ReplicationErr.
//
// Three modes reproduce the paper's configurations: ModeP2 (the
// contribution: buffers outside the enclave, record-granularity Merkle
// authentication), ModeP1 (the strawman: everything in-enclave,
// file-granularity sealing) and ModeUnsecured (plain LSM baseline).
package elsm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"elsm/internal/core"
	"elsm/internal/costmodel"
	"elsm/internal/lsm"
	"elsm/internal/obs"
	"elsm/internal/record"
	"elsm/internal/repl"
	"elsm/internal/sgx"
	"elsm/internal/vfs"
)

// Mode selects the system design being run (Table 1 of the paper).
type Mode int

const (
	// ModeP2 is eLSM-P2, the paper's contribution: code and metadata in
	// the enclave, read buffers and files outside, Merkle-authenticated.
	ModeP2 Mode = iota + 1
	// ModeP1 is the eLSM-P1 strawman: read buffers inside the enclave,
	// file-granularity sealing, no Merkle forest.
	ModeP1
	// ModeUnsecured is the plain LSM baseline with no enclave.
	ModeUnsecured
)

func (m Mode) String() string {
	switch m {
	case ModeP2:
		return "eLSM-P2"
	case ModeP1:
		return "eLSM-P1"
	case ModeUnsecured:
		return "unsecured"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Result is a verified query result.
type Result = core.Result

// Options configures Open. The zero value opens an in-memory eLSM-P2 store
// with a zero-cost simulated enclave (functional mode).
type Options struct {
	// Mode selects the design (default ModeP2).
	Mode Mode
	// Dir stores data in an OS directory instead of memory.
	Dir string
	// FS overrides the untrusted file system (takes precedence over Dir).
	FS vfs.FS
	// EPCSize is the simulated enclave's protected-memory capacity
	// (default 128 MB, the paper's hardware).
	EPCSize int
	// SimulateHardwareCosts enables the calibrated SGX cost model
	// (world switches, paging, copies burn CPU); off, the enclave is
	// purely functional.
	SimulateHardwareCosts bool
	// CacheSize is the read-buffer size in bytes (0 = no buffer).
	CacheSize int
	// MmapReads selects the mmap read path (P2/unsecured only).
	MmapReads bool
	// KeepVersions bounds retained versions per key (0 = keep all).
	KeepVersions int
	// Encryption enables the confidentiality layer (§5.6.2).
	Encryption *EncryptionOptions
	// RequireCleanRecovery refuses recovery with unverified WAL suffixes.
	RequireCleanRecovery bool
	// Platform and Counter persist the root of trust across restarts
	// (required for unseal + rollback detection after reopen).
	Platform *sgx.Platform
	Counter  *sgx.MonotonicCounter
	// IterChunkKeys bounds how many distinct keys a streaming iterator
	// chunk covers per run — the unit of per-ECall verification work and
	// of background prefetch (0 = the built-in default, currently 512).
	// Larger chunks amortize enclave boundary crossings better; smaller
	// chunks bound the enclave-resident working set.
	IterChunkKeys int
	// GroupCommitMaxOps caps how many operations one cross-client commit
	// group may carry (0 = unbounded). Setting 1 disables write
	// coalescing entirely: every commit pays its own WAL fsync and
	// counter-bump check — useful only for measuring what group commit
	// buys.
	GroupCommitMaxOps int
	// GroupCommitWindow makes a commit leader wait this long for more
	// concurrent commits to join its group before flushing it, trading
	// single-writer latency for larger groups. 0 (the default) relies on
	// the natural batching window: while one group's fsync is in flight,
	// the next group accumulates. AutoGroupCommitWindow derives the wait
	// adaptively from the observed fsync latency (an EWMA; the resolved
	// value is reported in Stats.GroupCommitWindowNanos). Capped at one
	// second.
	GroupCommitWindow time.Duration
	// InlineCompaction restores synchronous flush/compaction on the
	// commit path — the pre-background-maintenance behaviour, where a
	// writer that fills the memtable pays the whole level rewrite.
	// Exists for the ablation benchmark; never enable in production.
	// It also disables commit pipelining (append/fsync overlap).
	InlineCompaction bool
	// MaxAsyncCommitBacklog caps how many Batch.CommitAsync commits may
	// be acknowledged but not yet durable at once (0 = the built-in
	// default, currently 1024). A caller hitting the cap blocks — with
	// context cancellation — until the durability pipeline drains. The
	// cap bounds both the memory the pending queue holds and the window
	// of acknowledged writes a crash can lose.
	MaxAsyncCommitBacklog int
	// Shards partitions the store into this many independent authenticated
	// instances behind a stable-hash router (0 or 1 = a single instance,
	// the previous behaviour; must be a power of two). Each shard owns its
	// own WAL, memtable pair, digest forest, group committer, maintenance
	// worker and monotonic counter under a per-shard subdirectory
	// ("shard-00", "shard-01", ...), so concurrent writers spread across N
	// commit pipelines and N fsync streams instead of serializing through
	// one. Single-key operations route to one shard; batches split into
	// per-shard sub-batches committed in parallel (atomic per shard,
	// all-or-error at the router); scans merge the per-shard verified
	// streams in key order, preserving completeness; Snapshot pins all N
	// shards atomically. With Shards > 1, trusted timestamps are per-shard
	// (values from different shards are incomparable) and Snapshot.Ts
	// reports the router's commit sequence instead. The shard count is
	// part of the on-disk layout: reopen with the value the store was
	// created with.
	Shards int
	// ReplRingBytes bounds how many recently committed group bytes each
	// shard's replication hub retains for tail streams (0 = the built-in
	// default, currently 8 MB). A follower whose cursor falls out of the
	// ring gets repl.ErrBehind and must re-bootstrap from a checkpoint, so
	// smaller rings trade memory for re-bootstrap frequency under follower
	// downtime. Leaders only.
	ReplRingBytes int
	// ShardCounters persists each shard's root of trust across restarts
	// when Shards > 1: one trusted monotonic counter per shard, in shard
	// order (the sharded counterpart of Counter, which is single-instance
	// — each shard seals and verifies against its own counter, so one
	// shard's state never binds another's). Empty means fresh counters
	// (no rollback detection across reopen).
	ShardCounters []*sgx.MonotonicCounter
	// CompactionWorkers bounds how many background maintenance jobs —
	// memtable flushes plus compactions of disjoint level pairs — run
	// concurrently. The pool is shared across all shards, so ingest-heavy
	// shards borrow idle workers from quiet ones; flushes are always
	// dispatched first (they unblock stalled writers) and the remaining
	// jobs run in compaction-debt order (bytes over each level's size
	// target). 0 = auto (max(2, GOMAXPROCS/2)); negative is rejected.
	CompactionWorkers int
	// DisableInstrumentation turns the observability layer off entirely:
	// no latency histograms, no traces, no event log. The instrumented
	// store pays only atomic increments on its hot paths (and a pointer
	// test when off), so leaving it on is the intended default; the switch
	// exists for overhead measurement and ultra-lean embedded uses.
	DisableInstrumentation bool
	// SlowOpThreshold routes any commit group slower end-to-end than this
	// into the slow-op log with its full stage breakdown, regardless of
	// trace sampling (0 = the built-in default, currently 50ms).
	SlowOpThreshold time.Duration
	// TraceSampleEvery records every Nth commit group as a completed trace
	// in the trace ring (0 = the built-in default, currently 64; 1 traces
	// every group — debugging only, the ring churns fast).
	TraceSampleEvery int
	// Advanced engine tuning (zero = defaults).
	MemtableSize      int
	TableFileSize     int
	LevelBase         int64
	MaxLevels         int
	BlockSize         int
	DisableCompaction bool
	DisableWAL        bool

	// obsHub, when set, reuses an existing observability hub instead of
	// creating one — the follower re-bootstrap path passes the old hub
	// through so the event history and network-level histograms survive the
	// engine swap.
	obsHub *obs.Observer
}

// AutoGroupCommitWindow selects the adaptive group-commit window: the
// leader wait tracks half the fsync-latency EWMA instead of a fixed
// duration, so fast storage pays (near) zero delay while slow storage gets
// groups sized to its fsync cost.
const AutoGroupCommitWindow = lsm.AutoGroupCommitWindow

// validate rejects option values that would silently misbehave.
func (o Options) validate() error {
	if o.IterChunkKeys < 0 {
		return fmt.Errorf("elsm: IterChunkKeys must be ≥ 0, got %d", o.IterChunkKeys)
	}
	if o.GroupCommitMaxOps < 0 {
		return fmt.Errorf("elsm: GroupCommitMaxOps must be ≥ 0, got %d", o.GroupCommitMaxOps)
	}
	if o.GroupCommitWindow < 0 && o.GroupCommitWindow != AutoGroupCommitWindow {
		return fmt.Errorf("elsm: GroupCommitWindow must be ≥ 0 or AutoGroupCommitWindow, got %v", o.GroupCommitWindow)
	}
	if o.GroupCommitWindow > time.Second {
		return fmt.Errorf("elsm: GroupCommitWindow %v exceeds the 1s cap (it delays every commit)", o.GroupCommitWindow)
	}
	if o.MaxAsyncCommitBacklog < 0 {
		return fmt.Errorf("elsm: MaxAsyncCommitBacklog must be ≥ 0, got %d", o.MaxAsyncCommitBacklog)
	}
	if o.CompactionWorkers < 0 {
		return fmt.Errorf("elsm: CompactionWorkers must be ≥ 0 (0 = auto), got %d", o.CompactionWorkers)
	}
	if o.ReplRingBytes < 0 {
		return fmt.Errorf("elsm: ReplRingBytes must be ≥ 0, got %d", o.ReplRingBytes)
	}
	if o.SlowOpThreshold < 0 {
		return fmt.Errorf("elsm: SlowOpThreshold must be ≥ 0, got %v", o.SlowOpThreshold)
	}
	if o.TraceSampleEvery < 0 {
		return fmt.Errorf("elsm: TraceSampleEvery must be ≥ 0 (0 = default), got %d", o.TraceSampleEvery)
	}
	if o.Shards < 1 {
		return fmt.Errorf("elsm: Shards must be ≥ 1, got %d", o.Shards)
	}
	if o.Shards&(o.Shards-1) != 0 {
		return fmt.Errorf("elsm: Shards must be a power of two (stable mask-based hash routing), got %d", o.Shards)
	}
	if len(o.ShardCounters) > 0 && len(o.ShardCounters) != o.Shards {
		return fmt.Errorf("elsm: ShardCounters carries %d counters for %d shards (one per shard, in shard order)", len(o.ShardCounters), o.Shards)
	}
	if o.Counter != nil && len(o.ShardCounters) > 0 {
		return fmt.Errorf("elsm: Counter and ShardCounters are mutually exclusive (ambiguous roots of trust)")
	}
	if o.Shards > 1 && o.Counter != nil {
		return fmt.Errorf("elsm: Counter is single-instance; with Shards > 1 pass per-shard roots of trust via ShardCounters")
	}
	return nil
}

// Store is an authenticated key-value store.
type Store struct {
	mode Mode
	enc  *encLayer

	// kv is the engine (the shard router when Shards > 1). A follower
	// re-bootstrap swaps it wholesale, so every access goes through base().
	kvMu sync.RWMutex
	kv   core.KV

	// Replication roles (replica.go). A follower applies shipped groups
	// and rejects local writes until promoted; a leader lazily hosts
	// per-shard hubs. readOnly is atomic because Promote flips it while
	// reads and (rejected) writes are in flight.
	readOnly  atomic.Bool
	replMu    sync.Mutex // guards tailers, leaders, bootErr
	tailers   []*repl.Tailer
	leaders   []*repl.Leader
	bootErr   error // last failed automatic re-bootstrap (ReplicationErr)
	ringBytes int   // Options.ReplRingBytes, for the lazy leader hubs

	// Follower failover state: the resolved options and source OpenFollower
	// ran with, kept so the supervisor can wipe, re-bootstrap and reopen
	// behind shards without operator help. failoverMu serializes the
	// role transitions (re-bootstrap, Promote, Close).
	failoverMu   sync.Mutex
	closed       bool
	fsrc         FollowerSource
	fopts        *Options
	rebootstraps atomic.Uint64

	// Observability: the shared hub (traces, events, store-wide histograms)
	// and the per-shard recorders the engines observe into. Both nil with
	// DisableInstrumentation. recs is swapped together with kv at a
	// follower re-bootstrap (kvMu); the hub survives the swap.
	obsv *obs.Observer
	recs []*obs.Recorder
}

// base returns the current engine. It is a loan, not a handle: after a
// follower re-bootstrap swaps the engine, operations against the old one
// fail with the engine's closed error.
func (s *Store) base() core.KV {
	s.kvMu.RLock()
	kv := s.kv
	s.kvMu.RUnlock()
	return kv
}

// cost resolves the simulated-enclave cost model.
func (o Options) cost() costmodel.Model {
	if o.SimulateHardwareCosts {
		return costmodel.Calibrated()
	}
	return costmodel.Zero
}

// coreConfig maps the engine-tuning options onto a core.Config — the ONE
// place the pass-through fields are enumerated, shared by the single-
// instance and sharded open paths (which differ only in FS layout, enclave
// sharing and trust-root wiring, set by the callers on the returned value).
func (o Options) coreConfig(fs vfs.FS) core.Config {
	return core.Config{
		FS:                    fs,
		CacheSize:             o.CacheSize,
		MmapReads:             o.MmapReads,
		KeepVersions:          o.KeepVersions,
		RequireCleanRecovery:  o.RequireCleanRecovery,
		IterChunkKeys:         o.IterChunkKeys,
		GroupCommitMaxOps:     o.GroupCommitMaxOps,
		GroupCommitWindow:     o.GroupCommitWindow,
		MaxAsyncCommitBacklog: o.MaxAsyncCommitBacklog,
		InlineCompaction:      o.InlineCompaction,
		CompactionWorkers:     o.CompactionWorkers,
		MemtableSize:          o.MemtableSize,
		TableFileSize:         o.TableFileSize,
		LevelBase:             o.LevelBase,
		MaxLevels:             o.MaxLevels,
		BlockSize:             o.BlockSize,
		DisableCompaction:     o.DisableCompaction,
		DisableWAL:            o.DisableWAL,
	}
}

// buildObs resolves the store's observability hub and per-shard recorders
// from the options: nil/nil when instrumentation is off, otherwise a fresh
// hub (or the one threaded through obsHub by a follower re-bootstrap) with
// one recorder per shard.
func (o Options) buildObs(shards int) (*obs.Observer, []*obs.Recorder) {
	if o.DisableInstrumentation {
		return nil, nil
	}
	hub := o.obsHub
	if hub == nil {
		hub = obs.NewObserver(obs.Config{
			SampleEvery:     o.TraceSampleEvery,
			SlowOpThreshold: o.SlowOpThreshold,
		})
	}
	recs := make([]*obs.Recorder, shards)
	for i := range recs {
		recs[i] = obs.NewRecorder(i, hub)
	}
	return hub, recs
}

// openMode opens one store instance of the given design.
func openMode(mode Mode, cfg core.Config) (core.KV, error) {
	switch mode {
	case ModeP2:
		return core.Open(cfg)
	case ModeP1:
		return core.OpenP1(cfg)
	case ModeUnsecured:
		return core.OpenUnsecured(cfg)
	default:
		return nil, fmt.Errorf("elsm: unknown mode %d", mode)
	}
}

// Open creates or recovers a store.
func Open(opts Options) (*Store, error) {
	if opts.Mode == 0 {
		opts.Mode = ModeP2
	}
	if opts.Shards == 0 {
		opts.Shards = 1
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Shards > 1 {
		return openSharded(opts)
	}
	if opts.Counter == nil && len(opts.ShardCounters) == 1 {
		// A one-shard store is a single instance; accept the sharded
		// spelling of its root of trust.
		opts.Counter = opts.ShardCounters[0]
	}
	fs := opts.FS
	if fs == nil && opts.Dir != "" {
		osfs, err := vfs.NewOS(opts.Dir)
		if err != nil {
			return nil, err
		}
		fs = osfs
	}
	cfg := opts.coreConfig(fs)
	cfg.SGX = sgx.Params{EPCSize: opts.EPCSize, Cost: opts.cost()}
	cfg.Platform = opts.Platform
	cfg.Counter = opts.Counter
	hub, recs := opts.buildObs(1)
	if recs != nil {
		cfg.Obs = recs[0]
	}
	kv, err := openMode(opts.Mode, cfg)
	if err != nil {
		return nil, err
	}
	s := &Store{mode: opts.Mode, kv: kv, ringBytes: opts.ReplRingBytes, obsv: hub, recs: recs}
	if opts.Encryption != nil {
		s.enc, err = newEncLayer(*opts.Encryption)
		if err != nil {
			kv.Close()
			return nil, err
		}
	}
	return s, nil
}

// Mode reports which design this store runs.
func (s *Store) Mode() Mode { return s.mode }

// Observer returns the store's observability hub — sampled traces, the
// slow-op log, the structured event log and the store-wide histograms.
// Nil when Options.DisableInstrumentation was set. Safe on a nil store
// (config-validation paths construct servers before a store exists).
func (s *Store) Observer() *obs.Observer {
	if s == nil {
		return nil
	}
	return s.obsv
}

// Recorders returns the per-shard latency recorders in shard order (one
// entry for an unsharded store; nil when instrumentation is off). The
// admin endpoint and the STATS protocols render these — callers must
// treat the histograms as read-only.
func (s *Store) Recorders() []*obs.Recorder {
	if s == nil {
		return nil
	}
	s.kvMu.RLock()
	defer s.kvMu.RUnlock()
	return s.recs
}

// Put writes a key-value pair, returning the trusted timestamp assigned
// inside the enclave. The write is durable when Put returns.
func (s *Store) Put(key, value []byte) (uint64, error) { return s.PutCtx(nil, key, value) }

// PutCtx is Put with cancellation: a context cancelled while the write
// still waits in the group-commit queue withdraws it (nothing is written);
// once the committer has claimed it, the write completes regardless and
// its outcome is returned.
func (s *Store) PutCtx(ctx context.Context, key, value []byte) (uint64, error) {
	if s.readOnly.Load() {
		return 0, ErrReadOnlyReplica
	}
	if s.enc != nil {
		ek, ev, err := s.enc.sealRecord(key, value)
		if err != nil {
			return 0, err
		}
		return s.base().PutCtx(ctx, ek, ev)
	}
	return s.base().PutCtx(ctx, key, value)
}

// Delete removes a key (a verified tombstone write).
func (s *Store) Delete(key []byte) (uint64, error) { return s.DeleteCtx(nil, key) }

// DeleteCtx is Delete with commit-queue cancellation (see PutCtx).
func (s *Store) DeleteCtx(ctx context.Context, key []byte) (uint64, error) {
	if s.readOnly.Load() {
		return 0, ErrReadOnlyReplica
	}
	if s.enc != nil {
		ek, err := s.enc.sealKey(key)
		if err != nil {
			return 0, err
		}
		return s.base().DeleteCtx(ctx, ek)
	}
	return s.base().DeleteCtx(ctx, key)
}

// Sync is the durability barrier: it returns once every commit accepted
// before the call — synchronous Commits and acknowledged CommitAsyncs
// alike — is fsynced to stable storage.
func (s *Store) Sync(ctx context.Context) error { return s.base().Sync(ctx) }

// Get returns the latest value of key, verified for integrity and
// freshness (and completeness of the "not found" answer).
func (s *Store) Get(key []byte) (Result, error) { return s.GetAt(key, record.MaxTs) }

// GetCtx is Get with cancellation.
func (s *Store) GetCtx(ctx context.Context, key []byte) (Result, error) {
	return s.GetAtCtx(ctx, key, record.MaxTs)
}

// GetAt returns the newest value with timestamp ≤ tsq.
func (s *Store) GetAt(key []byte, tsq uint64) (Result, error) { return s.GetAtCtx(nil, key, tsq) }

// GetAtCtx is GetAt with cancellation.
func (s *Store) GetAtCtx(ctx context.Context, key []byte, tsq uint64) (Result, error) {
	if s.enc != nil {
		ek, ok, err := s.enc.lookupKey(key)
		if err != nil {
			return Result{}, err
		}
		if !ok {
			return Result{}, nil
		}
		res, err := s.base().GetAtCtx(ctx, ek, tsq)
		if err != nil || !res.Found {
			return Result{}, err
		}
		return s.enc.openResult(res)
	}
	return s.base().GetAtCtx(ctx, key, tsq)
}

// Scan returns the latest value of every key in [start, end], verified for
// completeness: a host that omits a matching record is detected. It is the
// materialized form of Iter — prefer Iter for large ranges, which streams
// the same verified results in bounded memory.
func (s *Store) Scan(start, end []byte) ([]Result, error) { return s.ScanCtx(nil, start, end) }

// ScanCtx is Scan with cancellation: a deadline or cancel mid-range stops
// the underlying verified stream.
func (s *Store) ScanCtx(ctx context.Context, start, end []byte) ([]Result, error) {
	it := s.IterCtx(ctx, start, end)
	var out []Result
	for it.Next() {
		out = append(out, it.Result())
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// ErrAuthFailed is re-exported so callers can classify verification
// failures with errors.Is.
var ErrAuthFailed = core.ErrAuthFailed

// IsAuthFailure reports whether err is an authentication failure (forged,
// stale, incomplete or rolled-back data detected).
func IsAuthFailure(err error) bool { return errors.Is(err, core.ErrAuthFailed) }

// Close seals the final trusted state and releases resources. On a
// follower it stops the tailers first (waiting out an in-flight automatic
// re-bootstrap); on a leader it detaches the replication hubs (ending
// every follower's stream).
func (s *Store) Close() error {
	s.failoverMu.Lock()
	s.closed = true
	s.failoverMu.Unlock()
	for _, t := range s.currentTailers() {
		t.Close()
	}
	s.replMu.Lock()
	for _, l := range s.leaders {
		l.Close()
	}
	s.leaders = nil
	s.replMu.Unlock()
	return s.base().Close()
}
