package elsm

import (
	"context"

	"elsm/internal/core"
	"elsm/internal/record"
)

// Iterator is a streaming verified range read: results arrive one at a
// time, each verified for integrity and freshness as its chunk crosses the
// enclave boundary, with range completeness checked incrementally — a host
// that omits, reorders or substitutes records mid-stream stops the
// iteration with ErrAuthFailed. Unlike Scan, an Iterator over an
// arbitrarily large range runs in memory bounded by the internal chunk
// size.
//
// The stream IS a point-in-time observation: the iterator pins the store's
// digest snapshot, runs and memtable view for its whole lifetime (the same
// machinery as Store.Snapshot), so writes committed mid-iteration never
// surface in later chunks and concurrent flushes or compactions cannot
// perturb the stream. Iterators must be Closed to release those pins.
//
// Usage:
//
//	it := store.Iter(start, end)
//	for it.Next() {
//	    use(it.Key(), it.Value())
//	}
//	if err := it.Close(); err != nil { ... }
//
// Iterators are not safe for concurrent use.
type Iterator struct {
	inner      core.Iterator
	enc        *encLayer
	start, end []byte // plaintext bounds (encryption mode only)
	cur        Result
	err        error
}

// Iter streams the latest verified value of every key in [start, end].
func (s *Store) Iter(start, end []byte) *Iterator { return s.IterAt(start, end, record.MaxTs) }

// IterCtx is Iter with cancellation: cancelling ctx stops the stream (Err
// reports the cancellation) and aborts the background chunk prefetch —
// the way to deadline a long verified scan.
func (s *Store) IterCtx(ctx context.Context, start, end []byte) *Iterator {
	return s.IterAtCtx(ctx, start, end, record.MaxTs)
}

// IterAt is Iter at a historical timestamp (newest version ≤ tsq per key).
func (s *Store) IterAt(start, end []byte, tsq uint64) *Iterator {
	return s.IterAtCtx(nil, start, end, tsq)
}

// IterAtCtx is IterAt with cancellation.
func (s *Store) IterAtCtx(ctx context.Context, start, end []byte, tsq uint64) *Iterator {
	if s.enc != nil {
		estart, eend, err := s.enc.rangeBounds(start, end)
		if err != nil {
			return &Iterator{err: err}
		}
		return &Iterator{
			inner: s.base().IterAtCtx(ctx, estart, eend, tsq),
			enc:   s.enc,
			start: append([]byte(nil), start...),
			end:   append([]byte(nil), end...),
		}
	}
	return &Iterator{inner: s.base().IterAtCtx(ctx, start, end, tsq)}
}

// Next advances to the next verified result, returning false at the end of
// the range or on error (check Err or Close).
func (it *Iterator) Next() bool {
	if it.err != nil || it.inner == nil {
		return false
	}
	for it.inner.Next() {
		res := it.inner.Result()
		if it.enc != nil {
			pr, err := it.enc.openResult(res)
			if err != nil {
				it.err = err
				return false
			}
			// OPE bounds may be slightly wider than the plaintext range.
			if string(pr.Key) < string(it.start) || string(pr.Key) > string(it.end) {
				continue
			}
			res = pr
		}
		it.cur = res
		return true
	}
	it.err = it.inner.Err()
	return false
}

// Key returns the current result's key (valid after Next returned true).
func (it *Iterator) Key() []byte { return it.cur.Key }

// Value returns the current result's value.
func (it *Iterator) Value() []byte { return it.cur.Value }

// Ts returns the current result's trusted timestamp.
func (it *Iterator) Ts() uint64 { return it.cur.Ts }

// Result returns the current result.
func (it *Iterator) Result() Result { return it.cur }

// Err returns the error that stopped iteration, if any (ErrAuthFailed
// variants for verification failures).
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator and returns the first error encountered.
func (it *Iterator) Close() error {
	if it.inner == nil {
		return it.err
	}
	cerr := it.inner.Close()
	if it.err != nil {
		return it.err
	}
	return cerr
}
