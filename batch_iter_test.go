// Tests for the batched-write and streaming-iterator public API: atomic
// commit semantics across modes and encryption, bounded-memory streaming,
// and batch atomicity under crash/recovery.
package elsm

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"elsm/internal/sgx"
	"elsm/internal/ycsb"
)

func TestBatchCommitAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeP2, ModeP1, ModeUnsecured} {
		t.Run(mode.String(), func(t *testing.T) {
			s, err := Open(Options{Mode: mode, CacheSize: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Put([]byte("pre"), []byte("old")); err != nil {
				t.Fatal(err)
			}

			b := s.NewBatch()
			for i := 0; i < 50; i++ {
				b.Put([]byte(fmt.Sprintf("key%03d", i)), []byte(fmt.Sprintf("val%d", i)))
			}
			b.Delete([]byte("pre"))
			if b.Len() != 51 {
				t.Fatalf("Len = %d", b.Len())
			}
			ts, err := b.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if ts != 52 { // 1 pre-put + 51 batch records
				t.Fatalf("commit ts = %d, want 52", ts)
			}
			if b.Len() != 0 {
				t.Fatal("batch not drained after commit")
			}

			// All-or-nothing visibility: every batch record readable, the
			// batched delete applied.
			for i := 0; i < 50; i++ {
				res, err := s.Get([]byte(fmt.Sprintf("key%03d", i)))
				if err != nil || !res.Found {
					t.Fatalf("get key%03d: %v found=%v", i, err, res.Found)
				}
			}
			if res, err := s.Get([]byte("pre")); err != nil || res.Found {
				t.Fatalf("batched delete not applied: %v found=%v", err, res.Found)
			}

			// Iterator and Scan agree on the committed state.
			it := s.Iter([]byte("key"), []byte("kez"))
			n := 0
			for it.Next() {
				if want := fmt.Sprintf("key%03d", n); string(it.Key()) != want {
					t.Fatalf("row %d = %q, want %q", n, it.Key(), want)
				}
				n++
			}
			if err := it.Close(); err != nil {
				t.Fatal(err)
			}
			if n != 50 {
				t.Fatalf("iterated %d rows", n)
			}

			// An empty commit is a no-op; the batch is reusable.
			if ts, err := b.Commit(); err != nil || ts != 0 {
				t.Fatalf("empty commit = %d, %v", ts, err)
			}
			b.Put([]byte("again"), []byte("x"))
			if _, err := b.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBatchAndIteratorEncrypted(t *testing.T) {
	s, err := Open(Options{Encryption: &EncryptionOptions{Mode: EncryptRange}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := s.NewBatch()
	for i := 0; i < 40; i++ {
		b.Put([]byte(fmt.Sprintf("user%03d", i)), []byte(fmt.Sprintf("secret%d", i)))
	}
	b.Delete([]byte("user013"))
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	it := s.Iter([]byte("user010"), []byte("user020"))
	var keys []string
	for it.Next() {
		var idx int
		if _, err := fmt.Sscanf(string(it.Key()), "user%03d", &idx); err != nil {
			t.Fatalf("unexpected key %q", it.Key())
		}
		if want := fmt.Sprintf("secret%d", idx); string(it.Value()) != want {
			t.Fatalf("value for %q = %q, want %q", it.Key(), it.Value(), want)
		}
		keys = append(keys, string(it.Key()))
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 10 { // user010..user020 minus deleted user013
		t.Fatalf("encrypted range streamed %v", keys)
	}
	for _, k := range keys {
		if k == "user013" {
			t.Fatal("batched encrypted delete not applied")
		}
	}

	// Point mode cannot stream ranges: the error surfaces via the iterator.
	p, err := Open(Options{Encryption: &EncryptionOptions{Mode: EncryptPoint}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	pit := p.Iter([]byte("a"), []byte("z"))
	if pit.Next() {
		t.Fatal("point-mode iterator yielded a row")
	}
	if err := pit.Close(); err != ErrScanUnsupported {
		t.Fatalf("point-mode iterator err = %v", err)
	}
}

func TestIteratorStreams10kBounded(t *testing.T) {
	// A 10k-record verified range must stream chunk by chunk (many ECalls,
	// each carrying a bounded slice) instead of materializing in one call.
	s, err := Open(Options{MmapReads: true, MemtableSize: 1 << 20, TableFileSize: 256 << 10, LevelBase: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 10_000
	bulkLoad(t, s, ycsb.GenRecords(n, 32))
	before := s.Stats().ECalls
	it := s.Iter(ycsb.Key(0), ycsb.Key(n))
	count := 0
	for it.Next() {
		count++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("streamed %d of %d", count, n)
	}
	chunkCalls := s.Stats().ECalls - before
	if chunkCalls < 10 {
		t.Fatalf("10k-record stream used only %d ECalls — looks materialized, not chunked", chunkCalls)
	}
}

// walFrames returns the byte offset of every frame boundary in a WAL file
// (including the final end offset), by walking the length-prefixed framing.
func walFrames(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offs := []int64{0}
	off := 0
	for off < len(data) {
		if off+8 > len(data) {
			t.Fatalf("truncated WAL header at %d", off)
		}
		n := int(binary.BigEndian.Uint32(data[off+4 : off+8]))
		off += 8 + n
		offs = append(offs, int64(off))
	}
	return offs
}

// crashedBatchStore opens a dir-backed store, seals a base record, reopens
// it and commits a 10-record batch WITHOUT closing — simulating a crash
// with the batch present only in the untrusted WAL.
func crashedBatchStore(t *testing.T) (dir string, platform *sgx.Platform, counter *sgx.MonotonicCounter) {
	t.Helper()
	dir = t.TempDir()
	platform, err := sgx.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	counter = sgx.NewMonotonicCounter()
	s1, err := Open(Options{Dir: dir, Platform: platform, Counter: counter})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Put([]byte("base"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil { // seals state: WAL digest covers "base"
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, Platform: platform, Counter: counter})
	if err != nil {
		t.Fatal(err)
	}
	b := s2.NewBatch()
	for i := 0; i < 10; i++ {
		b.Put([]byte(fmt.Sprintf("batch%02d", i)), []byte("v"))
	}
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash: s2 is abandoned without Close — no sealed state covers the
	// batch; it exists only in the WAL.
	return dir, platform, counter
}

func TestBatchFullReplayAppliesWholeBatch(t *testing.T) {
	dir, platform, counter := crashedBatchStore(t)
	s, err := Open(Options{Dir: dir, Platform: platform, Counter: counter})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		res, err := s.Get([]byte(fmt.Sprintf("batch%02d", i)))
		if err != nil || !res.Found {
			t.Fatalf("batch record %d after recovery: %v found=%v", i, err, res.Found)
		}
	}
}

func TestBatchPartialReplayIsRecoveryError(t *testing.T) {
	// The host truncates the WAL inside the batch's commit group
	// (frame-aligned, so the log still parses). The torn group is dropped
	// whole, and clean recovery must refuse: a log that ends inside a
	// group is not a clean shutdown, whatever caused it.
	dir, platform, counter := crashedBatchStore(t)
	wal := filepath.Join(dir, "wal.log")
	offs := walFrames(t, wal)
	// Frames: base record, its COMMIT marker, 10 batch records, marker.
	if len(offs) != 14 {
		t.Fatalf("expected 13 WAL frames, got %d", len(offs)-1)
	}
	// Keep the base group and the first 6 batch records — no marker.
	if err := os.Truncate(wal, offs[8]); err != nil {
		t.Fatal(err)
	}
	_, err := Open(Options{Dir: dir, Platform: platform, Counter: counter, RequireCleanRecovery: true})
	if err == nil {
		t.Fatal("partially-replayed batch passed clean recovery")
	}
	if !IsAuthFailure(err) {
		t.Fatalf("partial batch error = %v, want auth failure", err)
	}
}

func TestBatchTornWALRecoversGroupPrefix(t *testing.T) {
	// A torn write (truncation mid-frame, as a crash during the group
	// append leaves it) rolls the whole group back: recovery succeeds and
	// the store holds exactly the committed groups before it — never a
	// partially-applied batch.
	dir, platform, counter := crashedBatchStore(t)
	wal := filepath.Join(dir, "wal.log")
	offs := walFrames(t, wal)
	if err := os.Truncate(wal, offs[len(offs)-1]-5); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Options{Dir: dir, Platform: platform, Counter: counter})
	if err != nil {
		t.Fatalf("torn tail must recover to the last whole group: %v", err)
	}
	defer s.Close()
	if res, err := s.Get([]byte("base")); err != nil || !res.Found {
		t.Fatalf("committed group lost: %v found=%v", err, res.Found)
	}
	for i := 0; i < 10; i++ {
		res, err := s.Get([]byte(fmt.Sprintf("batch%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatalf("batch record %d survived a torn group — atomicity broken", i)
		}
	}
}
