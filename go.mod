module elsm

go 1.22
