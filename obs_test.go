// Observability integration tests: the instrumentation must see through
// the public API what the engine actually did — histograms fill on the
// hot paths, a forced-slow fsync shows up in the slow-op log with an
// fsync-dominant stage breakdown, and turning instrumentation off leaves
// no observer behind.
package elsm

import (
	"fmt"
	"testing"
	"time"

	"elsm/internal/vfs"
)

// TestObsHistogramsFill drives every instrumented hot path and checks the
// per-shard recorders saw it.
func TestObsHistogramsFill(t *testing.T) {
	opts := testOptions(ModeP2)
	opts.Shards = 2
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 400; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	// A duplicate-key batch lands on ONE shard with len(ops) > 1 — the
	// synchronous multi-op commit that fills commit_e2e. (A cross-shard
	// batch rides per-shard CommitAsync instead and is timed by the
	// router's histogram, checked below.)
	b := s.NewBatch()
	b.Put([]byte("batch-dup"), []byte("v1"))
	b.Put([]byte("batch-dup"), []byte("v2"))
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	// 16 distinct keys span both shards: the router times the cross-shard
	// commit end to end.
	wide := s.NewBatch()
	for i := 0; i < 16; i++ {
		wide.Put([]byte(fmt.Sprintf("batch-%02d", i)), []byte("v"))
	}
	if _, err := wide.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("key%04d", i*17))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Scan([]byte("key0000"), []byte("key0400")); err != nil {
		t.Fatal(err)
	}
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}

	recs := s.Recorders()
	if len(recs) != 2 {
		t.Fatalf("Recorders() returned %d, want 2", len(recs))
	}
	// Merge shards per canonical name, then require observations on every
	// path the workload exercised.
	merged := map[string]uint64{}
	for _, r := range recs {
		for _, nh := range r.Hists() {
			merged[nh.Name] += nh.Hist.Snapshot().Count
		}
	}
	for _, name := range []string{
		"put_e2e_nanos", "commit_e2e_nanos", "get_e2e_nanos",
		"scan_chunk_nanos", "commit_queue_wait_nanos", "commit_append_nanos",
		"commit_fsync_nanos", "commit_apply_nanos", "commit_resolve_nanos",
		"compact_snapshot_nanos", "compact_merge_nanos", "compact_install_nanos",
		"verify_nanos", "proof_bytes",
	} {
		if merged[name] == 0 {
			t.Errorf("histogram %s recorded nothing", name)
		}
	}
	o := s.Observer()
	if o == nil {
		t.Fatal("Observer() nil on an instrumented store")
	}
	if o.RouterBatch.Snapshot().Count == 0 {
		t.Error("router batch histogram recorded nothing for a cross-shard commit")
	}
}

// TestObsDisableInstrumentation checks the opt-out: no observer, no
// recorders, and the store still works.
func TestObsDisableInstrumentation(t *testing.T) {
	opts := testOptions(ModeP2)
	opts.DisableInstrumentation = true
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Observer() != nil || s.Recorders() != nil {
		t.Fatal("DisableInstrumentation left an observer behind")
	}
	if _, err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if res, err := s.Get([]byte("k")); err != nil || !res.Found {
		t.Fatalf("get after put: %v found=%v", err, res.Found)
	}
}

// TestObsSlowOpCapture forces a slow fsync (vfs.NewSlowSync) under a low
// slow-op threshold and requires the commit group to surface in the
// slow-op log with the fsync stage dominating the breakdown — the exact
// diagnosis loop the slow-op log exists for.
func TestObsSlowOpCapture(t *testing.T) {
	opts := testOptions(ModeP2)
	opts.FS = vfs.NewSlowSync(vfs.NewMem(), 5*time.Millisecond)
	opts.MemtableSize = 1 << 20 // keep flushes (also sync-delayed) off the path
	opts.SlowOpThreshold = time.Millisecond
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 6; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	slow := s.Observer().SlowOps()
	if len(slow) == 0 {
		t.Fatal("no slow ops captured despite 5ms fsyncs under a 1ms threshold")
	}
	checked := false
	for _, tr := range slow {
		if tr.Kind != "commit-group" {
			continue
		}
		checked = true
		if !tr.Slow {
			t.Errorf("slow-op trace not marked Slow: %+v", tr)
		}
		stages := map[string]uint64{}
		for _, st := range tr.Stages {
			stages[st.Name] = st.Nanos
		}
		fsync, ok := stages["fsync"]
		if !ok {
			t.Fatalf("commit-group trace missing fsync stage: %+v", tr.Stages)
		}
		for name, nanos := range stages {
			if name != "fsync" && nanos > fsync {
				t.Errorf("stage %s (%dns) exceeds fsync (%dns); breakdown should be fsync-dominant: %+v",
					name, nanos, fsync, tr.Stages)
			}
		}
		if fsync < uint64(4*time.Millisecond) {
			t.Errorf("fsync stage %dns, want ≥ ~5ms (the injected delay)", fsync)
		}
	}
	if !checked {
		t.Fatalf("no commit-group trace among %d slow ops", len(slow))
	}
}
