package elsm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"elsm/internal/vfs"
)

// snapshotChurnOptions builds a store geometry small enough that the churn
// phase forces real flushes, compactions and WAL rotations.
func snapshotChurnOptions(mode Mode, fs vfs.FS) Options {
	opts := testOptions(mode)
	opts.FS = fs
	opts.KeepVersions = 1 // version GC: compaction really rewrites history
	return opts
}

// sstFiles counts SSTable files on the untrusted FS.
func sstFiles(t *testing.T, fs vfs.FS) int {
	t.Helper()
	names, err := fs.List("")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, name := range names {
		if strings.HasSuffix(name, ".sst") {
			n++
		}
	}
	return n
}

// TestSnapshotPinnedUnderChurn is the acceptance scenario: open a snapshot,
// then force flush + compaction + WAL rotation underneath it, and prove —
// in all three modes — that the snapshot's reads stay verified and
// byte-identical, that the live store moved on, and that Close releases the
// run refcounts (replaced run files are actually deleted, no leaks).
func TestSnapshotPinnedUnderChurn(t *testing.T) {
	for _, mode := range []Mode{ModeP2, ModeP1, ModeUnsecured} {
		t.Run(mode.String(), func(t *testing.T) {
			fs := vfs.NewMem()
			s, err := Open(snapshotChurnOptions(mode, fs))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			const keys = 60
			for i := 0; i < keys; i++ {
				if _, err := s.Put([]byte(fmt.Sprintf("key%03d", i)), []byte(fmt.Sprintf("v1-%03d", i))); err != nil {
					t.Fatal(err)
				}
			}
			// Put some of the dataset on disk so the snapshot pins runs,
			// not just memtables.
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if _, err := s.Put([]byte(fmt.Sprintf("mem%03d", i)), []byte("buffered")); err != nil {
					t.Fatal(err)
				}
			}

			snap, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			before, err := snap.Scan([]byte("a"), []byte("z"))
			if err != nil {
				t.Fatal(err)
			}
			if len(before) != keys+10 {
				t.Fatalf("snapshot scan = %d results, want %d", len(before), keys+10)
			}
			snapTs := snap.Ts()

			// Churn: overwrite every key (several times, forcing flushes and
			// the compaction cascade — each Flush also rotates and deletes
			// WAL files), delete some, add new ones.
			for round := 0; round < 3; round++ {
				for i := 0; i < keys; i++ {
					if _, err := s.Put([]byte(fmt.Sprintf("key%03d", i)), []byte(fmt.Sprintf("v2-r%d-%03d", round, i))); err != nil {
						t.Fatal(err)
					}
				}
				if err := s.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 10; i++ {
				if _, err := s.Delete([]byte(fmt.Sprintf("mem%03d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Flush(); err != nil { // settles overflowing levels too
				t.Fatal(err)
			}
			if st := s.Stats(); st.Compactions == 0 && mode != ModeUnsecured {
				t.Logf("note: churn produced no compaction (flushes=%d)", st.Flushes)
			}

			// The snapshot must replay its original view bit for bit.
			after, err := snap.Scan([]byte("a"), []byte("z"))
			if err != nil {
				t.Fatalf("snapshot scan after churn: %v", err)
			}
			if len(after) != len(before) {
				t.Fatalf("snapshot scan changed size after churn: %d -> %d", len(before), len(after))
			}
			for i := range before {
				if !bytes.Equal(before[i].Key, after[i].Key) ||
					!bytes.Equal(before[i].Value, after[i].Value) ||
					before[i].Ts != after[i].Ts {
					t.Fatalf("snapshot drifted at %d: %q/%q ts %d -> %q/%q ts %d",
						i, before[i].Key, before[i].Value, before[i].Ts,
						after[i].Key, after[i].Value, after[i].Ts)
				}
			}
			for i := 0; i < keys; i += 7 {
				res, err := snap.Get([]byte(fmt.Sprintf("key%03d", i)))
				if err != nil {
					t.Fatalf("snapshot get after churn: %v", err)
				}
				if want := fmt.Sprintf("v1-%03d", i); !res.Found || string(res.Value) != want {
					t.Fatalf("snapshot get key%03d = %q found=%v, want %q", i, res.Value, res.Found, want)
				}
			}
			if snap.Ts() != snapTs {
				t.Fatalf("snapshot Ts drifted: %d -> %d", snapTs, snap.Ts())
			}
			// The live store sees the churned state, not the snapshot's.
			live, err := s.Get([]byte("key000"))
			if err != nil || !live.Found || !strings.HasPrefix(string(live.Value), "v2-r2-") {
				t.Fatalf("live get = %q found=%v err=%v, want v2-r2-*", live.Value, live.Found, err)
			}
			if got := s.Stats().SnapshotsOpen; got == 0 {
				t.Fatal("SnapshotsOpen gauge is 0 with a snapshot open")
			}

			// Close must release the pins: the replaced runs' files — kept
			// alive only for the snapshot — are deleted, and the gauges
			// return to zero. Quiesce first so no in-flight background
			// compaction skews the pin gauge or the file counts.
			if err := s.WaitMaintenance(); err != nil {
				t.Fatal(err)
			}
			pinnedFiles := sstFiles(t, fs)
			if err := snap.Close(); err != nil {
				t.Fatal(err)
			}
			if err := snap.Close(); err != nil { // idempotent
				t.Fatal(err)
			}
			st := s.Stats()
			if st.SnapshotsOpen != 0 || st.PinnedRuns != 0 {
				t.Fatalf("after snapshot close: SnapshotsOpen=%d PinnedRuns=%d, want 0/0", st.SnapshotsOpen, st.PinnedRuns)
			}
			if got := sstFiles(t, fs); got >= pinnedFiles {
				t.Fatalf("snapshot close released no files: %d before, %d after (leaked run files)", pinnedFiles, got)
			}
		})
	}
}

// TestSnapshotIteratorOutlivesClose opens an iterator from a snapshot,
// closes the snapshot mid-stream, and checks the stream still completes
// verified (iterators hold their own pins).
func TestSnapshotIteratorOutlivesClose(t *testing.T) {
	s, err := Open(testOptions(ModeP2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 40; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	it := snap.Iter([]byte("a"), []byte("z"))
	if !it.Next() {
		t.Fatal("empty snapshot stream")
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	n := 1
	for it.Next() {
		n++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("stream after snapshot close = %d results, want 40", n)
	}
	// Quiesce: an in-flight background job legitimately pins its inputs.
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.SnapshotsOpen != 0 || st.PinnedRuns != 0 {
		t.Fatalf("pins leaked: SnapshotsOpen=%d PinnedRuns=%d", st.SnapshotsOpen, st.PinnedRuns)
	}
}

// TestSnapshotHistoricalReads checks GetAt/IterAt within a snapshot and the
// clamping of future timestamps to the snapshot frontier.
func TestSnapshotHistoricalReads(t *testing.T) {
	s, err := Open(Options{}) // defaults: full version history
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts1, err := s.Put([]byte("k"), []byte("old"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put([]byte("k"), []byte("mid")); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if _, err := s.Put([]byte("k"), []byte("new")); err != nil {
		t.Fatal(err)
	}

	if res, err := snap.GetAt([]byte("k"), ts1); err != nil || string(res.Value) != "old" {
		t.Fatalf("snapshot historical get = %q err=%v, want old", res.Value, err)
	}
	// A timestamp beyond the snapshot clamps to the snapshot's state.
	if res, err := snap.GetAt([]byte("k"), snap.Ts()+100); err != nil || string(res.Value) != "mid" {
		t.Fatalf("snapshot clamped get = %q err=%v, want mid", res.Value, err)
	}
	if res, err := s.Get([]byte("k")); err != nil || string(res.Value) != "new" {
		t.Fatalf("live get = %q err=%v, want new", res.Value, err)
	}
}

// TestCommitAsyncAcknowledgeResolveSync exercises the async durability
// contract: acknowledgment carries the trusted timestamp, Sync is the
// barrier, resolution makes the write visible, and the in-flight gauge
// drains to zero.
func TestCommitAsyncAcknowledgeResolveSync(t *testing.T) {
	fs := vfs.NewSlowSync(vfs.NewMem(), 200*time.Microsecond)
	opts := testOptions(ModeP2)
	opts.FS = fs
	opts.MemtableSize = 1 << 20
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	var futs []*CommitFuture
	var lastTs uint64
	for i := 0; i < 50; i++ {
		b := s.NewBatch()
		b.Put([]byte(fmt.Sprintf("async%03d", i)), []byte(fmt.Sprintf("v%d", i)))
		fut, err := b.CommitAsync(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := fut.Ts(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ts <= lastTs {
			t.Fatalf("async commit %d acknowledged ts %d, not after %d", i, ts, lastTs)
		}
		lastTs = ts
		if b.Len() != 0 {
			t.Fatal("batch not reusable after CommitAsync")
		}
		futs = append(futs, fut)
	}
	if err := s.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	for i, fut := range futs {
		select {
		case <-fut.Done():
		default:
			t.Fatalf("future %d unresolved after Sync", i)
		}
		if _, err := fut.Wait(ctx); err != nil {
			t.Fatalf("future %d failed: %v", i, err)
		}
	}
	for i := 0; i < 50; i++ {
		res, err := s.Get([]byte(fmt.Sprintf("async%03d", i)))
		if err != nil || !res.Found {
			t.Fatalf("async write %d not readable: found=%v err=%v", i, res.Found, err)
		}
	}
	if got := s.Stats().AsyncCommitsInFlight; got != 0 {
		t.Fatalf("AsyncCommitsInFlight = %d after Sync, want 0", got)
	}
}

// TestCtxCancelMidCommitQueue fills the durability pipeline on slow-fsync
// storage, queues one more write, cancels it while it is still waiting in
// the commit queue, and checks it is withdrawn: the caller gets
// context.Canceled and the key never becomes visible.
func TestCtxCancelMidCommitQueue(t *testing.T) {
	fs := vfs.NewSlowSync(vfs.NewMem(), 50*time.Millisecond)
	opts := testOptions(ModeP2)
	opts.FS = fs
	opts.MemtableSize = 1 << 20
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Occupy both pipeline slots (and the fsync) with async commits.
	for i := 0; i < 4; i++ {
		b := s.NewBatch()
		b.Put([]byte(fmt.Sprintf("filler%d", i)), []byte("v"))
		if _, err := b.CommitAsync(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.PutCtx(ctx, []byte("cancelled-key"), []byte("should-not-land"))
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the put reach the queue, not the worker
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			// The worker may have claimed it first — then it must have
			// committed successfully. Both outcomes are legal; only a
			// cancellation error with a visible write is a bug.
			if err != nil {
				t.Fatalf("cancelled put failed with %v, want context.Canceled or success", err)
			}
			return
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled put never returned")
	}
	// Withdrawn: even after full durability, the key must not exist.
	if err := s.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := s.Get([]byte("cancelled-key"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("withdrawn (cancelled) write became visible")
	}
}

// TestCtxCancelMidIterator cancels a context in the middle of a verified
// stream and checks the iterator stops with the cancellation error, in all
// three modes.
func TestCtxCancelMidIterator(t *testing.T) {
	for _, mode := range []Mode{ModeP2, ModeP1, ModeUnsecured} {
		t.Run(mode.String(), func(t *testing.T) {
			opts := testOptions(mode)
			opts.IterChunkKeys = 8 // many chunks: the cancel lands mid-stream
			s, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < 200; i++ {
				if _, err := s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			it := s.IterCtx(ctx, []byte("a"), []byte("z"))
			n := 0
			for it.Next() {
				n++
				if n == 20 {
					cancel()
				}
			}
			if n >= 200 {
				t.Fatalf("iterator ran to completion (%d results) despite cancellation", n)
			}
			if err := it.Close(); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled iterator Close = %v, want context.Canceled", err)
			}
			// Pins released despite the abort. Quiesce first: an in-flight
			// background compaction legitimately pins its input runs.
			if err := s.WaitMaintenance(); err != nil {
				t.Fatal(err)
			}
			if st := s.Stats(); st.PinnedRuns != 0 {
				t.Fatalf("aborted iterator leaked %d run pins", st.PinnedRuns)
			}
		})
	}
}

// TestCtxCancellationRaceStress hammers the two cancellation paths under
// the race detector: concurrent writers with randomly-cancelled commit
// contexts and concurrent readers with randomly-cancelled iterators, over
// live flush/compaction churn.
func TestCtxCancellationRaceStress(t *testing.T) {
	opts := testOptions(ModeP2)
	opts.IterChunkKeys = 8
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 100; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("seed%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				if i%3 == 0 {
					cancel() // already-cancelled commits must be clean no-ops
				}
				_, err := s.PutCtx(ctx, []byte(fmt.Sprintf("w%d-%04d", w, i)), []byte("v"))
				if err != nil && !errors.Is(err, context.Canceled) {
					errCh <- err
					cancel()
					return
				}
				cancel()
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				it := s.IterCtx(ctx, []byte("a"), []byte("z"))
				n := 0
				for it.Next() {
					n++
					if n == (r+1)*5 {
						cancel()
					}
				}
				err := it.Close()
				cancel()
				if err != nil && !errors.Is(err, context.Canceled) {
					errCh <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Quiesce background maintenance first: with the parallel scheduler an
	// in-flight compaction legitimately pins its input runs, and this
	// assertion is about pins LEAKED by the cancellation paths.
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PinnedRuns != 0 || st.SnapshotsOpen != 0 {
		t.Fatalf("stress leaked pins: PinnedRuns=%d SnapshotsOpen=%d", st.PinnedRuns, st.SnapshotsOpen)
	}
}
