package elsm

import (
	"context"

	"elsm/internal/core"
)

// CommitFuture is the handle of an asynchronous batch commit: acknowledged
// (Ts available) once the commit timestamp is assigned and the group is
// appended to the WAL, resolved (Wait/Done) once it is fsynced and visible
// to reads. A crash between acknowledgment and resolution loses the batch;
// Store.Sync is the barrier that closes the window.
type CommitFuture = core.CommitFuture

// Batch is an atomic multi-op write. Operations are buffered locally and
// applied by Commit in ONE enclave round trip: the engine takes its write
// lock once, every record extends the WAL digest chain individually, but
// the group shares a single WAL append+fsync and at most one monotonic
// counter bump — amortizing the per-operation enclave-boundary costs that
// make one-at-a-time Put expensive (§5.6.1's write buffer, applied to the
// client API).
//
// A Batch is not safe for concurrent use. After Commit the batch is empty
// and may be reused.
type Batch struct {
	s   *Store
	ops []core.BatchOp
	err error
}

// NewBatch starts an empty write batch against the store.
func (s *Store) NewBatch() *Batch { return &Batch{s: s} }

// Put buffers a key-value write. The slices are copied, so the caller may
// reuse them immediately.
func (b *Batch) Put(key, value []byte) *Batch {
	if b.err != nil {
		return b
	}
	if b.s.enc != nil {
		ek, ev, err := b.s.enc.sealRecord(key, value)
		if err != nil {
			b.err = err
			return b
		}
		b.ops = append(b.ops, core.BatchOp{Key: ek, Value: ev})
		return b
	}
	b.ops = append(b.ops, core.BatchOp{
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), value...),
	})
	return b
}

// Delete buffers a tombstone write for key.
func (b *Batch) Delete(key []byte) *Batch {
	if b.err != nil {
		return b
	}
	if b.s.enc != nil {
		ek, err := b.s.enc.sealKey(key)
		if err != nil {
			b.err = err
			return b
		}
		b.ops = append(b.ops, core.BatchOp{Key: ek, Delete: true})
		return b
	}
	b.ops = append(b.ops, core.BatchOp{Key: append([]byte(nil), key...), Delete: true})
	return b
}

// Len reports how many operations are buffered.
func (b *Batch) Len() int { return len(b.ops) }

// Reset discards all buffered operations and any deferred error.
func (b *Batch) Reset() {
	b.ops = nil
	b.err = nil
}

// Commit applies every buffered operation atomically and returns the
// batch's commit timestamp (the trusted timestamp of its last record; the
// batch occupies the contiguous timestamp range ending there). Committing
// an empty batch is a no-op. On success the batch is empty and reusable;
// on failure the operations stay buffered so the caller can inspect or
// re-Commit them (note a failure after the WAL write, e.g. a flush error,
// may already have logged the records — recovery semantics then apply).
func (b *Batch) Commit() (uint64, error) { return b.CommitCtx(nil) }

// CommitCtx is Commit with cancellation: a context cancelled while the
// batch still waits in the group-commit queue withdraws it (nothing is
// written, the operations stay buffered); once the committer has claimed
// the batch, the commit completes regardless and its outcome is returned.
func (b *Batch) CommitCtx(ctx context.Context) (uint64, error) {
	if b.err != nil {
		return 0, b.err
	}
	if len(b.ops) == 0 {
		return 0, nil
	}
	if b.s.readOnly.Load() {
		return 0, ErrReadOnlyReplica
	}
	ts, err := b.s.base().ApplyBatchCtx(ctx, b.ops)
	if err != nil {
		return 0, err
	}
	b.ops = nil
	return ts, nil
}

// CommitAsync commits the batch with pipelined durability: it returns a
// CommitFuture as soon as the batch is admitted to the commit pipeline
// (the context bounds only the admission wait against
// Options.MaxAsyncCommitBacklog). The future is acknowledged when the
// batch's trusted timestamp is assigned and its group is appended to the
// WAL — at which point the committer is already pipelining the next
// group's append with this group's fsync — and resolved when the batch is
// durable and visible. On success the batch is empty and reusable
// immediately; on admission failure the operations stay buffered.
func (b *Batch) CommitAsync(ctx context.Context) (*CommitFuture, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.ops) == 0 {
		// Parity with Commit: an empty batch is a no-op with a zero
		// timestamp, not an acknowledgment of someone else's commit.
		return core.NewResolvedFuture(0, nil), nil
	}
	if b.s.readOnly.Load() {
		return nil, ErrReadOnlyReplica
	}
	fut, err := b.s.base().CommitAsync(ctx, b.ops)
	if err != nil {
		return nil, err
	}
	b.ops = nil
	return fut, nil
}
