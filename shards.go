package elsm

import (
	"fmt"

	"elsm/internal/core"
	"elsm/internal/lsm"
	"elsm/internal/sgx"
	"elsm/internal/shard"
	"elsm/internal/vfs"
)

// openSharded opens Options.Shards independent store instances — one per
// hash partition, each under its own subdirectory with its own WAL, digest
// forest and monotonic counter — and mounts them behind a shard.Router that
// re-exports the full verified API. One platform and one simulated enclave
// host every shard (the enclave is the machine's trusted runtime and the
// EPC a machine resource; concurrent per-shard ECalls do not serialize),
// while the roots of trust stay per shard: each instance seals and verifies
// its own counter-bound state, so recovery validates partitions
// independently and one shard's rollback never masks as another's.
func openSharded(opts Options) (*Store, error) {
	n := opts.Shards
	platform := opts.Platform
	if platform == nil {
		var err error
		platform, err = sgx.NewPlatform()
		if err != nil {
			return nil, err
		}
	}
	enclave := sgx.New(sgx.Params{EPCSize: opts.EPCSize, Cost: opts.cost()})

	// One maintenance worker pool serves every shard: the machine has one
	// set of cores, so N shards sharing max(2, GOMAXPROCS/2) workers lets
	// ingest-heavy shards borrow capacity from quiet ones instead of N
	// pools oversubscribing the CPU.
	workers := opts.CompactionWorkers
	if workers <= 0 {
		workers = lsm.DefaultCompactionWorkers()
	}
	pool := lsm.NewWorkerPool(workers)

	// The parent location splits into per-shard sub-filesystems; a fully
	// in-memory store gives each shard its own private MemFS.
	baseFS := opts.FS
	if baseFS == nil && opts.Dir != "" {
		osfs, err := vfs.NewOS(opts.Dir)
		if err != nil {
			return nil, err
		}
		baseFS = osfs
	}

	hub, recs := opts.buildObs(n)

	shards := make([]core.KV, 0, n)
	closeAll := func() {
		for _, sh := range shards {
			sh.Close()
		}
	}
	for i := 0; i < n; i++ {
		var fs vfs.FS
		if baseFS != nil {
			sub, err := vfs.Sub(baseFS, shard.DirName(i))
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("elsm: shard %d filesystem: %w", i, err)
			}
			fs = sub
		}
		cfg := opts.coreConfig(fs)
		cfg.Enclave = enclave
		cfg.Platform = platform
		cfg.Workers = pool
		if recs != nil {
			cfg.Obs = recs[i]
		}
		if len(opts.ShardCounters) == n {
			cfg.Counter = opts.ShardCounters[i]
		}
		kv, err := openMode(opts.Mode, cfg)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("elsm: open shard %d: %w", i, err)
		}
		shards = append(shards, kv)
	}
	router, err := shard.New(shards)
	if err != nil {
		closeAll()
		return nil, err
	}
	router.SetObserver(hub)
	s := &Store{mode: opts.Mode, kv: router, ringBytes: opts.ReplRingBytes, obsv: hub, recs: recs}
	if opts.Encryption != nil {
		s.enc, err = newEncLayer(*opts.Encryption)
		if err != nil {
			router.Close()
			return nil, err
		}
	}
	return s, nil
}

// Shards reports the store's partition count (1 for a single-instance
// store).
func (s *Store) Shards() int {
	if r, ok := s.base().(*shard.Router); ok {
		return r.NumShards()
	}
	return 1
}

// Flush forces the memtable (every shard's, on a sharded store) to disk
// through the authenticated flush path — a testing and operations hook; the
// background maintenance worker flushes automatically in normal use.
func (s *Store) Flush() error {
	if f, ok := s.base().(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// WaitMaintenance blocks until all background flush/compaction work
// enqueued before the call has completed, on every shard — the fence tests
// and tooling use to observe a quiescent on-disk state.
func (s *Store) WaitMaintenance() error {
	switch kv := s.base().(type) {
	case *shard.Router:
		return kv.WaitMaintenance()
	case engined:
		return kv.Engine().WaitMaintenance()
	}
	return nil
}
